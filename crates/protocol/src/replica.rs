//! Per-replica state shared by every protocol engine.
//!
//! [`ReplicaCore`] bundles the pieces every engine needs regardless of the
//! protocol: configuration, current view, the execution queue (in-order
//! execution against the KV store), the primary-side batcher, the per-client
//! reply cache (for retransmitted requests) and checkpoint tracking. Protocol
//! engines embed a `ReplicaCore` and add their own phase state on top.

use crate::actions::Outbox;
use crate::batcher::Batcher;
use crate::messages::{ClientReply, Message};
use flexitrust_exec::{CheckpointLog, ExecutedBatch, ExecutionQueue, KvStore};
use flexitrust_types::{Batch, ClientId, Digest, ReplicaId, RequestId, SeqNum, SystemConfig, View};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Common replica state embedded by every protocol engine.
pub struct ReplicaCore {
    /// Shared deployment configuration: one allocation per cluster, a
    /// reference-count bump per replica that embeds it.
    config: Arc<SystemConfig>,
    id: ReplicaId,
    view: View,
    exec: ExecutionQueue,
    batcher: Batcher,
    checkpoints: CheckpointLog,
    reply_cache: BTreeMap<ClientId, (RequestId, ClientReply)>,
    executed_txns: u64,
}

impl ReplicaCore {
    /// Creates the core state for replica `id` under `config`, executing
    /// against an empty key-value store. Accepts either an owned
    /// `SystemConfig` or an `Arc<SystemConfig>` shared across the cluster.
    pub fn new(config: impl Into<Arc<SystemConfig>>, id: ReplicaId) -> Self {
        Self::with_store(config, id, KvStore::new())
    }

    /// Creates the core state with a pre-loaded store (e.g. the 600 k-record
    /// YCSB table). The store is repartitioned to the configured shard
    /// count and executed by `config.exec_workers` shard workers; both are
    /// parallelism knobs only and never change digests or results.
    pub fn with_store(
        config: impl Into<Arc<SystemConfig>>,
        id: ReplicaId,
        mut store: KvStore,
    ) -> Self {
        let config = config.into();
        let checkpoint_quorum = config.small_quorum();
        store.reshard(config.exec_shards);
        ReplicaCore {
            batcher: Batcher::new(config.batch_size),
            checkpoints: CheckpointLog::new(config.checkpoint_interval, checkpoint_quorum),
            exec: ExecutionQueue::with_workers(store, config.exec_workers),
            reply_cache: BTreeMap::new(),
            executed_txns: 0,
            view: View::ZERO,
            config,
            id,
        }
    }

    /// The deployment configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// The current view.
    pub fn view(&self) -> View {
        self.view
    }

    /// Moves to `view` (monotonically; going backwards is ignored).
    pub fn enter_view(&mut self, view: View) {
        if view > self.view {
            self.view = view;
        }
    }

    /// The primary of the current view.
    pub fn primary(&self) -> ReplicaId {
        self.view.primary(self.config.n)
    }

    /// Returns `true` when this replica is the primary of the current view.
    pub fn is_primary(&self) -> bool {
        self.primary() == self.id
    }

    /// The primary-side batcher.
    pub fn batcher_mut(&mut self) -> &mut Batcher {
        &mut self.batcher
    }

    /// The highest executed sequence number.
    pub fn last_executed(&self) -> SeqNum {
        self.exec.last_executed()
    }

    /// Total transactions executed by this replica.
    pub fn executed_txns(&self) -> u64 {
        self.executed_txns
    }

    /// Digest of the current RSM state.
    pub fn state_digest(&self) -> Digest {
        self.exec.state_digest()
    }

    /// Read-only access to the execution queue.
    pub fn exec(&self) -> &ExecutionQueue {
        &self.exec
    }

    /// Mutable access to the execution queue (used by speculative protocols
    /// for rollback and by state transfer).
    pub fn exec_mut(&mut self) -> &mut ExecutionQueue {
        &mut self.exec
    }

    /// The checkpoint log.
    pub fn checkpoints(&self) -> &CheckpointLog {
        &self.checkpoints
    }

    /// Looks up a cached reply for a retransmitted client request.
    pub fn cached_reply(&self, client: ClientId, request: RequestId) -> Option<&ClientReply> {
        self.reply_cache
            .get(&client)
            .filter(|(req, _)| *req == request)
            .map(|(_, reply)| reply)
    }

    /// Submits a committed (or speculatively executable) batch at `seq`:
    /// executes everything now in order, emits one reply per transaction and
    /// an `Executed` notification per batch, and returns the executed
    /// batches so the engine can trigger protocol-specific follow-ups
    /// (checkpoint messages, speculative bookkeeping, ...).
    pub fn commit_batch(
        &mut self,
        seq: SeqNum,
        batch: Batch,
        speculative: bool,
        out: &mut Outbox,
    ) -> Vec<ExecutedBatch> {
        let executed = self.exec.submit(seq, batch);
        for done in &executed {
            self.executed_txns += done.outcomes.len() as u64;
            out.executed(done.seq, done.outcomes.len());
            for outcome in &done.outcomes {
                // No-op filler transactions have no real client to answer.
                if outcome.client == ClientId(u64::MAX) {
                    continue;
                }
                let reply = ClientReply {
                    client: outcome.client,
                    request: outcome.request,
                    seq: done.seq,
                    view: self.view,
                    replica: self.id,
                    result: outcome.result.clone(),
                    speculative,
                };
                self.reply_cache
                    .insert(outcome.client, (outcome.request, reply.clone()));
                out.reply(reply);
            }
        }
        executed
    }

    /// Emits a `Checkpoint` broadcast if `seq` crosses a checkpoint boundary.
    pub fn maybe_emit_checkpoint(&mut self, seq: SeqNum, out: &mut Outbox) {
        if self.checkpoints.is_checkpoint_seq(seq) {
            out.broadcast(Message::Checkpoint {
                seq,
                state_digest: self.state_digest(),
                attestation: None,
            });
        }
    }

    /// Records a checkpoint vote; returns the newly stable checkpoint
    /// sequence number when this vote made it stable.
    pub fn record_checkpoint_vote(
        &mut self,
        from: ReplicaId,
        seq: SeqNum,
        state_digest: Digest,
    ) -> Option<SeqNum> {
        self.checkpoints
            .record_vote(from, seq, state_digest)
            .map(|c| c.seq)
    }

    /// The stable low-water mark (sequence numbers at or below this may be
    /// garbage collected).
    pub fn low_water_mark(&self) -> SeqNum {
        self.checkpoints.low_water_mark()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexitrust_types::{KvOp, ProtocolId, Transaction};

    fn core() -> ReplicaCore {
        let cfg = SystemConfig::for_protocol(ProtocolId::FlexiBft, 1);
        ReplicaCore::new(cfg, ReplicaId(1))
    }

    fn batch(tag: u64) -> Batch {
        Batch::new(
            vec![Transaction::new(
                ClientId(3),
                RequestId(tag),
                KvOp::Update {
                    key: tag,
                    value: vec![1].into(),
                },
            )],
            Digest::from_u64_tag(tag),
        )
    }

    #[test]
    fn primary_is_derived_from_view() {
        let mut c = core();
        assert_eq!(c.primary(), ReplicaId(0));
        assert!(!c.is_primary());
        c.enter_view(View(1));
        assert!(c.is_primary());
        // Views never go backwards.
        c.enter_view(View(0));
        assert_eq!(c.view(), View(1));
    }

    #[test]
    fn commit_batch_executes_in_order_and_replies() {
        let mut c = core();
        let mut out = Outbox::new();
        assert!(c
            .commit_batch(SeqNum(2), batch(2), false, &mut out)
            .is_empty());
        assert_eq!(out.replies().len(), 0);
        let executed = c.commit_batch(SeqNum(1), batch(1), false, &mut out);
        assert_eq!(executed.len(), 2);
        assert_eq!(c.last_executed(), SeqNum(2));
        assert_eq!(c.executed_txns(), 2);
        assert_eq!(out.replies().len(), 2);
        assert_eq!(out.replies()[0].replica, ReplicaId(1));
    }

    #[test]
    fn reply_cache_returns_latest_reply_per_client() {
        let mut c = core();
        let mut out = Outbox::new();
        c.commit_batch(SeqNum(1), batch(1), false, &mut out);
        c.commit_batch(SeqNum(2), batch(2), false, &mut out);
        assert!(c.cached_reply(ClientId(3), RequestId(2)).is_some());
        assert!(c.cached_reply(ClientId(3), RequestId(1)).is_none());
        assert!(c.cached_reply(ClientId(9), RequestId(2)).is_none());
    }

    #[test]
    fn noop_transactions_are_not_replied_to() {
        let mut c = core();
        let mut out = Outbox::new();
        c.commit_batch(SeqNum(1), Batch::noop(1), false, &mut out);
        assert_eq!(out.replies().len(), 0);
        assert_eq!(c.last_executed(), SeqNum(1));
    }

    #[test]
    fn checkpoint_vote_quorum_advances_low_water_mark() {
        let mut c = core();
        let digest = Digest::from_u64_tag(5);
        assert!(c
            .record_checkpoint_vote(ReplicaId(0), SeqNum(1000), digest)
            .is_none());
        assert!(c
            .record_checkpoint_vote(ReplicaId(2), SeqNum(1000), digest)
            .is_some());
        assert_eq!(c.low_water_mark(), SeqNum(1000));
    }

    #[test]
    fn checkpoint_broadcast_fires_only_on_boundaries() {
        let mut c = core();
        let mut out = Outbox::new();
        c.maybe_emit_checkpoint(SeqNum(999), &mut out);
        assert!(out.is_empty());
        c.maybe_emit_checkpoint(SeqNum(1000), &mut out);
        assert_eq!(out.broadcasts().len(), 1);
        assert_eq!(out.broadcasts()[0].kind(), "Checkpoint");
    }

    #[test]
    fn speculative_flag_propagates_to_replies() {
        let mut c = core();
        let mut out = Outbox::new();
        c.commit_batch(SeqNum(1), batch(1), true, &mut out);
        assert!(out.replies()[0].speculative);
    }
}
