//! Per-replica state shared by every protocol engine.
//!
//! [`ReplicaCore`] bundles the pieces every engine needs regardless of the
//! protocol: configuration, current view, the execution queue (in-order
//! execution against the KV store), the primary-side batcher, the per-client
//! reply cache (for retransmitted requests) and checkpoint tracking. Protocol
//! engines embed a `ReplicaCore` and add their own phase state on top.

use crate::actions::Outbox;
use crate::batcher::Batcher;
use crate::messages::{ClientReply, Message};
use flexitrust_exec::{Checkpoint, CheckpointLog, ExecutedBatch, ExecutionQueue, KvStore};
use flexitrust_types::{
    Batch, ClientId, Digest, ReplicaId, RequestId, SeqNum, StateSnapshot, SystemConfig, View,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Common replica state embedded by every protocol engine.
pub struct ReplicaCore {
    /// Shared deployment configuration: one allocation per cluster, a
    /// reference-count bump per replica that embeds it.
    config: Arc<SystemConfig>,
    id: ReplicaId,
    view: View,
    exec: ExecutionQueue,
    batcher: Batcher,
    checkpoints: CheckpointLog,
    reply_cache: BTreeMap<ClientId, (RequestId, ClientReply)>,
    executed_txns: u64,
    /// State snapshots captured at checkpoint boundaries, kept so this
    /// replica can serve checkpoint state transfer to a recovering peer.
    /// Garbage collected to the stable low-water mark as it advances.
    boundary_snapshots: BTreeMap<u64, StateSnapshot>,
}

impl ReplicaCore {
    /// Creates the core state for replica `id` under `config`, executing
    /// against an empty key-value store. Accepts either an owned
    /// `SystemConfig` or an `Arc<SystemConfig>` shared across the cluster.
    pub fn new(config: impl Into<Arc<SystemConfig>>, id: ReplicaId) -> Self {
        Self::with_store(config, id, KvStore::new())
    }

    /// Creates the core state with a pre-loaded store (e.g. the 600 k-record
    /// YCSB table). The store is repartitioned to the configured shard
    /// count and executed by `config.exec_workers` shard workers; both are
    /// parallelism knobs only and never change digests or results.
    pub fn with_store(
        config: impl Into<Arc<SystemConfig>>,
        id: ReplicaId,
        mut store: KvStore,
    ) -> Self {
        let config = config.into();
        let checkpoint_quorum = config.small_quorum();
        store.reshard(config.exec_shards);
        ReplicaCore {
            batcher: Batcher::new(config.batch_size),
            checkpoints: CheckpointLog::new(config.checkpoint_interval, checkpoint_quorum),
            exec: ExecutionQueue::with_workers(store, config.exec_workers),
            reply_cache: BTreeMap::new(),
            executed_txns: 0,
            boundary_snapshots: BTreeMap::new(),
            view: View::ZERO,
            config,
            id,
        }
    }

    /// The deployment configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// The current view.
    pub fn view(&self) -> View {
        self.view
    }

    /// Moves to `view` (monotonically; going backwards is ignored).
    pub fn enter_view(&mut self, view: View) {
        if view > self.view {
            self.view = view;
        }
    }

    /// The primary of the current view.
    pub fn primary(&self) -> ReplicaId {
        self.view.primary(self.config.n)
    }

    /// Returns `true` when this replica is the primary of the current view.
    pub fn is_primary(&self) -> bool {
        self.primary() == self.id
    }

    /// The primary-side batcher.
    pub fn batcher_mut(&mut self) -> &mut Batcher {
        &mut self.batcher
    }

    /// The highest executed sequence number.
    pub fn last_executed(&self) -> SeqNum {
        self.exec.last_executed()
    }

    /// Total transactions executed by this replica.
    pub fn executed_txns(&self) -> u64 {
        self.executed_txns
    }

    /// Digest of the current RSM state.
    pub fn state_digest(&self) -> Digest {
        self.exec.state_digest()
    }

    /// Read-only access to the execution queue.
    pub fn exec(&self) -> &ExecutionQueue {
        &self.exec
    }

    /// Mutable access to the execution queue (used by speculative protocols
    /// for rollback and by state transfer).
    pub fn exec_mut(&mut self) -> &mut ExecutionQueue {
        &mut self.exec
    }

    /// The checkpoint log.
    pub fn checkpoints(&self) -> &CheckpointLog {
        &self.checkpoints
    }

    /// Looks up a cached reply for a retransmitted client request.
    pub fn cached_reply(&self, client: ClientId, request: RequestId) -> Option<&ClientReply> {
        self.reply_cache
            .get(&client)
            .filter(|(req, _)| *req == request)
            .map(|(_, reply)| reply)
    }

    /// Submits a committed (or speculatively executable) batch at `seq`:
    /// executes everything now in order, emits one reply per transaction and
    /// an `Executed` notification per batch, and returns the executed
    /// batches so the engine can trigger protocol-specific follow-ups
    /// (checkpoint messages, speculative bookkeeping, ...).
    pub fn commit_batch(
        &mut self,
        seq: SeqNum,
        batch: Batch,
        speculative: bool,
        out: &mut Outbox,
    ) -> Vec<ExecutedBatch> {
        let executed = self.exec.submit(seq, batch);
        for done in &executed {
            self.executed_txns += done.outcomes.len() as u64;
            out.executed(done.seq, done.outcomes.len());
            for outcome in &done.outcomes {
                // No-op filler transactions have no real client to answer.
                if outcome.client == ClientId(u64::MAX) {
                    continue;
                }
                let reply = ClientReply {
                    client: outcome.client,
                    request: outcome.request,
                    seq: done.seq,
                    view: self.view,
                    replica: self.id,
                    result: outcome.result.clone(),
                    speculative,
                };
                self.reply_cache
                    .insert(outcome.client, (outcome.request, reply.clone()));
                out.reply(reply);
            }
        }
        executed
    }

    /// Emits a `Checkpoint` broadcast if `seq` crosses a checkpoint boundary,
    /// capturing the boundary state so the replica can later serve a
    /// checkpoint state transfer ([`Self::stable_checkpoint_snapshot`]).
    pub fn maybe_emit_checkpoint(&mut self, seq: SeqNum, out: &mut Outbox) {
        if self.checkpoints.is_checkpoint_seq(seq) {
            self.boundary_snapshots
                .insert(seq.0, self.exec.store().to_snapshot());
            out.broadcast(Message::Checkpoint {
                seq,
                state_digest: self.state_digest(),
                attestation: None,
            });
        }
    }

    /// Records a checkpoint vote; returns the newly stable checkpoint
    /// sequence number when this vote made it stable.
    pub fn record_checkpoint_vote(
        &mut self,
        from: ReplicaId,
        seq: SeqNum,
        state_digest: Digest,
    ) -> Option<SeqNum> {
        let stable = self
            .checkpoints
            .record_vote(from, seq, state_digest)
            .map(|c| c.seq);
        if let Some(stable) = stable {
            // Keep the stable boundary itself (it serves state transfer),
            // drop everything older.
            self.boundary_snapshots.retain(|s, _| *s >= stable.0);
        }
        stable
    }

    /// The stable checkpoint and its captured state snapshot, when this
    /// replica's stable checkpoint is past `after` and the boundary state
    /// is still held. Serves a peer's `CheckpointRequest`.
    pub fn stable_checkpoint_snapshot(&self, after: SeqNum) -> Option<(SeqNum, StateSnapshot)> {
        let stable = self.checkpoints.stable()?;
        if stable.seq <= after {
            return None;
        }
        let snapshot = self.boundary_snapshots.get(&stable.seq.0)?;
        Some((stable.seq, snapshot.clone()))
    }

    /// Installs a peer's stable checkpoint: rebuilds the store from the
    /// snapshot, fast-forwards the execution queue to `seq`, and adopts the
    /// checkpoint as the stable low-water mark. Returns `false` (leaving
    /// all state untouched) when this replica has already executed past
    /// `seq`. The recovery rejoin path.
    pub fn install_checkpoint(&mut self, seq: SeqNum, snapshot: &StateSnapshot) -> bool {
        if seq <= self.last_executed() {
            return false;
        }
        let store = KvStore::from_snapshot(snapshot, self.config.exec_shards);
        let state_digest = store.state_digest();
        self.exec.fast_forward(seq, store);
        self.checkpoints
            .install_stable(Checkpoint { seq, state_digest });
        self.boundary_snapshots.retain(|s, _| *s >= seq.0);
        self.boundary_snapshots.insert(seq.0, snapshot.clone());
        true
    }

    /// The stable low-water mark (sequence numbers at or below this may be
    /// garbage collected).
    pub fn low_water_mark(&self) -> SeqNum {
        self.checkpoints.low_water_mark()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexitrust_types::{KvOp, ProtocolId, Transaction};

    fn core() -> ReplicaCore {
        let cfg = SystemConfig::for_protocol(ProtocolId::FlexiBft, 1);
        ReplicaCore::new(cfg, ReplicaId(1))
    }

    fn batch(tag: u64) -> Batch {
        Batch::new(
            vec![Transaction::new(
                ClientId(3),
                RequestId(tag),
                KvOp::Update {
                    key: tag,
                    value: vec![1].into(),
                },
            )],
            Digest::from_u64_tag(tag),
        )
    }

    #[test]
    fn primary_is_derived_from_view() {
        let mut c = core();
        assert_eq!(c.primary(), ReplicaId(0));
        assert!(!c.is_primary());
        c.enter_view(View(1));
        assert!(c.is_primary());
        // Views never go backwards.
        c.enter_view(View(0));
        assert_eq!(c.view(), View(1));
    }

    #[test]
    fn commit_batch_executes_in_order_and_replies() {
        let mut c = core();
        let mut out = Outbox::new();
        assert!(c
            .commit_batch(SeqNum(2), batch(2), false, &mut out)
            .is_empty());
        assert_eq!(out.replies().len(), 0);
        let executed = c.commit_batch(SeqNum(1), batch(1), false, &mut out);
        assert_eq!(executed.len(), 2);
        assert_eq!(c.last_executed(), SeqNum(2));
        assert_eq!(c.executed_txns(), 2);
        assert_eq!(out.replies().len(), 2);
        assert_eq!(out.replies()[0].replica, ReplicaId(1));
    }

    #[test]
    fn reply_cache_returns_latest_reply_per_client() {
        let mut c = core();
        let mut out = Outbox::new();
        c.commit_batch(SeqNum(1), batch(1), false, &mut out);
        c.commit_batch(SeqNum(2), batch(2), false, &mut out);
        assert!(c.cached_reply(ClientId(3), RequestId(2)).is_some());
        assert!(c.cached_reply(ClientId(3), RequestId(1)).is_none());
        assert!(c.cached_reply(ClientId(9), RequestId(2)).is_none());
    }

    #[test]
    fn noop_transactions_are_not_replied_to() {
        let mut c = core();
        let mut out = Outbox::new();
        c.commit_batch(SeqNum(1), Batch::noop(1), false, &mut out);
        assert_eq!(out.replies().len(), 0);
        assert_eq!(c.last_executed(), SeqNum(1));
    }

    #[test]
    fn checkpoint_vote_quorum_advances_low_water_mark() {
        let mut c = core();
        let digest = Digest::from_u64_tag(5);
        assert!(c
            .record_checkpoint_vote(ReplicaId(0), SeqNum(1000), digest)
            .is_none());
        assert!(c
            .record_checkpoint_vote(ReplicaId(2), SeqNum(1000), digest)
            .is_some());
        assert_eq!(c.low_water_mark(), SeqNum(1000));
    }

    #[test]
    fn checkpoint_broadcast_fires_only_on_boundaries() {
        let mut c = core();
        let mut out = Outbox::new();
        c.maybe_emit_checkpoint(SeqNum(999), &mut out);
        assert!(out.is_empty());
        c.maybe_emit_checkpoint(SeqNum(1000), &mut out);
        assert_eq!(out.broadcasts().len(), 1);
        assert_eq!(out.broadcasts()[0].kind(), "Checkpoint");
    }

    #[test]
    fn checkpoint_state_transfer_round_trips_through_install() {
        // A source replica with a small checkpoint interval executes past a
        // boundary and stabilises it.
        let mut cfg = SystemConfig::for_protocol(ProtocolId::FlexiBft, 1);
        cfg.checkpoint_interval = 2;
        let cfg = Arc::new(cfg);
        let mut source = ReplicaCore::new(Arc::clone(&cfg), ReplicaId(1));
        let mut out = Outbox::new();
        source.commit_batch(SeqNum(1), batch(1), false, &mut out);
        source.commit_batch(SeqNum(2), batch(2), false, &mut out);
        source.maybe_emit_checkpoint(SeqNum(2), &mut out);
        let digest = source.state_digest();
        source.record_checkpoint_vote(ReplicaId(0), SeqNum(2), digest);
        source.record_checkpoint_vote(ReplicaId(2), SeqNum(2), digest);
        assert_eq!(source.low_water_mark(), SeqNum(2));

        // It serves the stable boundary to a peer that is behind...
        let (seq, snapshot) = source.stable_checkpoint_snapshot(SeqNum(0)).unwrap();
        assert_eq!(seq, SeqNum(2));
        // ...but not to one already caught up.
        assert!(source.stable_checkpoint_snapshot(SeqNum(2)).is_none());

        // A fresh replica installs it and lands on the same state.
        let mut joiner = ReplicaCore::new(Arc::clone(&cfg), ReplicaId(3));
        assert!(joiner.install_checkpoint(seq, &snapshot));
        assert_eq!(joiner.last_executed(), SeqNum(2));
        assert_eq!(joiner.state_digest(), digest);
        assert_eq!(joiner.low_water_mark(), SeqNum(2));
        // Installing behind the execution frontier is refused.
        assert!(!joiner.install_checkpoint(SeqNum(1), &snapshot));
        // The joiner can itself serve the installed boundary onwards.
        assert!(joiner.stable_checkpoint_snapshot(SeqNum(0)).is_some());
    }

    #[test]
    fn speculative_flag_propagates_to_replies() {
        let mut c = core();
        let mut out = Outbox::new();
        c.commit_batch(SeqNum(1), batch(1), true, &mut out);
        assert!(out.replies()[0].speculative);
    }
}
