//! The client-side library.
//!
//! The client library sends a signed transaction to the primary and waits
//! for "enough" matching replies before reporting the result to the
//! application (§3). How many replies are enough is protocol-specific:
//! `f + 1` for PBFT, MinBFT and Flexi-BFT; `2f + 1` for Flexi-ZZ; all
//! `n` for Zyzzyva and MinZZ's single-round fast path. [`ClientLibrary`]
//! implements that matching/counting logic once, including the retry and
//! fast-path-fallback behaviour the harnesses need.

use crate::messages::ClientReply;
use flexitrust_types::{
    ClientId, KvResult, QuorumRule, ReplicaId, RequestId, SeqNum, SystemConfig, ValueBytes,
};
use std::collections::{BTreeMap, BTreeSet};

/// Progress of one outstanding request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestStatus {
    /// Not enough matching replies yet.
    Pending {
        /// Number of matching replies received for the leading result.
        matching: usize,
        /// Number required for completion.
        needed: usize,
    },
    /// The request completed.
    Complete {
        /// The agreed result.
        result: KvResult,
        /// The sequence number it executed at.
        seq: SeqNum,
        /// How many matching replies supported it.
        matching: usize,
    },
}

#[derive(Debug, Default)]
struct PendingRequest {
    /// Votes per (seq, result) candidate.
    votes: BTreeMap<(SeqNum, KvResultKey), BTreeSet<ReplicaId>>,
    results: BTreeMap<(SeqNum, KvResultKey), KvResult>,
    complete: bool,
}

/// Hashable, ordered fingerprint of a [`KvResult`] used for reply
/// matching — the "digest" half of a `(seq, digest)` reply-vote candidate.
/// Public so that harnesses counting reply quorums outside this library
/// (the simulator's aggregate client model) match replies exactly the way
/// [`ClientLibrary`] does.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KvResultKey {
    /// A read's value (or absence); cloning the result into the key is a
    /// refcount bump on the shared buffer, not a byte copy.
    Value(Option<ValueBytes>),
    /// A write acknowledgement.
    Written,
    /// A range scan, fingerprinted by length and key sum.
    RangeLen(usize, u64),
    /// A no-op.
    Noop,
}

/// Returns `true` when `result` fingerprints to `key`: the same match
/// [`result_key`] would produce, but without cloning the result's bytes
/// into a fresh key — for vote-counting hot paths that probe existing
/// candidates far more often than they create one.
pub fn result_matches_key(result: &KvResult, key: &KvResultKey) -> bool {
    match (result, key) {
        (KvResult::Value(v), KvResultKey::Value(kv)) => v == kv,
        (KvResult::Written, KvResultKey::Written) => true,
        (KvResult::Noop, KvResultKey::Noop) => true,
        (KvResult::Range(rows), KvResultKey::RangeLen(len, key_sum)) => {
            rows.len() == *len && rows.iter().map(|(k, _)| *k).sum::<u64>() == *key_sum
        }
        _ => false,
    }
}

/// Fingerprint of a [`KvResult`] for reply-vote matching.
pub fn result_key(result: &KvResult) -> KvResultKey {
    match result {
        KvResult::Value(v) => KvResultKey::Value(v.clone()),
        KvResult::Written => KvResultKey::Written,
        KvResult::Range(r) => {
            KvResultKey::RangeLen(r.len(), r.iter().map(|(k, _)| *k).sum::<u64>())
        }
        KvResult::Noop => KvResultKey::Noop,
    }
}

/// Client-side reply collection for one client.
#[derive(Debug)]
pub struct ClientLibrary {
    client: ClientId,
    needed: usize,
    fallback_needed: usize,
    pending: BTreeMap<RequestId, PendingRequest>,
    completed: u64,
}

impl ClientLibrary {
    /// Creates the library for `client` under the protocol's reply rule.
    ///
    /// `fallback_needed` is the threshold accepted after a fast-path timeout
    /// for all-replica protocols (Zyzzyva commits with `2f + 1` matching
    /// replies plus an extra round; MinZZ with `f + 1`); for other protocols
    /// it equals the normal threshold.
    pub fn new(client: ClientId, config: &SystemConfig, rule: QuorumRule) -> Self {
        let needed = config.quorum(rule);
        let fallback_needed = match rule {
            QuorumRule::AllReplicas => config.large_quorum().min(needed),
            _ => needed,
        };
        ClientLibrary {
            client,
            needed,
            fallback_needed,
            pending: BTreeMap::new(),
            completed: 0,
        }
    }

    /// The client this library belongs to.
    pub fn client(&self) -> ClientId {
        self.client
    }

    /// Number of matching replies required on the normal path.
    pub fn needed(&self) -> usize {
        self.needed
    }

    /// Number of matching replies accepted after a fast-path timeout.
    pub fn fallback_needed(&self) -> usize {
        self.fallback_needed
    }

    /// Number of requests completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Number of requests still waiting for replies.
    pub fn outstanding(&self) -> usize {
        self.pending.values().filter(|p| !p.complete).count()
    }

    /// Registers a new outstanding request.
    pub fn begin(&mut self, request: RequestId) {
        self.pending.entry(request).or_default();
    }

    /// Processes one reply; returns the updated status of that request.
    ///
    /// Replies for unknown or already completed requests return their status
    /// without changing anything (late replies are normal in BFT systems).
    pub fn on_reply(&mut self, reply: &ClientReply) -> RequestStatus {
        self.on_reply_with_threshold(reply, self.needed)
    }

    /// Like [`Self::on_reply`], but checks against the fallback threshold.
    /// Harnesses call this after a fast-path timeout for protocols whose
    /// normal rule is "all replicas" (Zyzzyva, MinZZ).
    pub fn on_reply_fallback(&mut self, reply: &ClientReply) -> RequestStatus {
        self.on_reply_with_threshold(reply, self.fallback_needed)
    }

    fn on_reply_with_threshold(&mut self, reply: &ClientReply, needed: usize) -> RequestStatus {
        debug_assert_eq!(reply.client, self.client);
        let entry = self.pending.entry(reply.request).or_default();
        let key = (reply.seq, result_key(&reply.result));
        if !entry.complete {
            entry
                .results
                .entry(key.clone())
                .or_insert_with(|| reply.result.clone());
            entry
                .votes
                .entry(key.clone())
                .or_default()
                .insert(reply.replica);
        }
        let matching = entry.votes.get(&key).map(BTreeSet::len).unwrap_or(0);
        if entry.complete {
            return RequestStatus::Complete {
                result: reply.result.clone(),
                seq: reply.seq,
                matching,
            };
        }
        if matching >= needed {
            entry.complete = true;
            self.completed += 1;
            RequestStatus::Complete {
                result: entry.results[&key].clone(),
                seq: reply.seq,
                matching,
            }
        } else {
            RequestStatus::Pending { matching, needed }
        }
    }

    /// Checks whether an outstanding request would complete under the
    /// fallback threshold given the replies already received; used by the
    /// harnesses when a fast-path timer expires.
    pub fn try_fallback_complete(&mut self, request: RequestId) -> Option<RequestStatus> {
        let entry = self.pending.get_mut(&request)?;
        if entry.complete {
            return None;
        }
        let best = entry
            .votes
            .iter()
            .max_by_key(|(_, voters)| voters.len())
            .map(|(k, voters)| (k.clone(), voters.len()))?;
        if best.1 >= self.fallback_needed {
            entry.complete = true;
            self.completed += 1;
            let (seq, _) = best.0;
            Some(RequestStatus::Complete {
                result: entry.results[&best.0].clone(),
                seq,
                matching: best.1,
            })
        } else {
            None
        }
    }

    /// Drops state for a completed request (bounded-memory clients).
    pub fn forget(&mut self, request: RequestId) {
        self.pending.remove(&request);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexitrust_types::{ProtocolId, View};

    fn reply(replica: u32, request: u64, seq: u64, value: u8) -> ClientReply {
        ClientReply {
            client: ClientId(1),
            request: RequestId(request),
            seq: SeqNum(seq),
            view: View(0),
            replica: ReplicaId(replica),
            result: KvResult::Value(Some(vec![value].into())),
            speculative: false,
        }
    }

    fn library(protocol: ProtocolId, rule: QuorumRule) -> ClientLibrary {
        let cfg = SystemConfig::for_protocol(protocol, 2);
        ClientLibrary::new(ClientId(1), &cfg, rule)
    }

    #[test]
    fn completes_at_f_plus_one_matching_replies() {
        // Flexi-BFT / PBFT-style rule with f = 2: needs 3 matching replies.
        let mut lib = library(ProtocolId::FlexiBft, QuorumRule::FPlusOne);
        lib.begin(RequestId(1));
        assert_eq!(
            lib.on_reply(&reply(0, 1, 5, 9)),
            RequestStatus::Pending {
                matching: 1,
                needed: 3
            }
        );
        assert_eq!(
            lib.on_reply(&reply(1, 1, 5, 9)),
            RequestStatus::Pending {
                matching: 2,
                needed: 3
            }
        );
        let status = lib.on_reply(&reply(2, 1, 5, 9));
        assert!(matches!(
            status,
            RequestStatus::Complete { matching: 3, .. }
        ));
        assert_eq!(lib.completed(), 1);
    }

    #[test]
    fn mismatching_results_do_not_count_together() {
        let mut lib = library(ProtocolId::FlexiBft, QuorumRule::FPlusOne);
        lib.begin(RequestId(1));
        lib.on_reply(&reply(0, 1, 5, 1));
        lib.on_reply(&reply(1, 1, 5, 2)); // different value
        lib.on_reply(&reply(2, 1, 6, 1)); // different seq
        let status = lib.on_reply(&reply(3, 1, 5, 1));
        // Only replicas 0 and 3 agree exactly; still pending.
        assert_eq!(
            status,
            RequestStatus::Pending {
                matching: 2,
                needed: 3
            }
        );
    }

    #[test]
    fn duplicate_replies_from_one_replica_count_once() {
        let mut lib = library(ProtocolId::FlexiBft, QuorumRule::FPlusOne);
        lib.begin(RequestId(1));
        lib.on_reply(&reply(0, 1, 5, 1));
        let status = lib.on_reply(&reply(0, 1, 5, 1));
        assert_eq!(
            status,
            RequestStatus::Pending {
                matching: 1,
                needed: 3
            }
        );
    }

    #[test]
    fn all_replica_rule_needs_every_replica_on_fast_path() {
        // MinZZ with f = 2 → n = 5 replies needed; fallback 2f+1 = 5 too
        // (clamped to n... for 2f+1 protocols large_quorum == n).
        let mut lib = library(ProtocolId::MinZz, QuorumRule::AllReplicas);
        assert_eq!(lib.needed(), 5);
        lib.begin(RequestId(1));
        for r in 0..4 {
            lib.on_reply(&reply(r, 1, 1, 1));
        }
        assert_eq!(lib.outstanding(), 1);
        assert!(matches!(
            lib.on_reply(&reply(4, 1, 1, 1)),
            RequestStatus::Complete { .. }
        ));
    }

    #[test]
    fn zyzzyva_fallback_completes_with_2f_plus_1_after_timeout() {
        // Zyzzyva with f = 2 → fast path needs n = 7, fallback 2f+1 = 5.
        let mut lib = library(ProtocolId::Zyzzyva, QuorumRule::AllReplicas);
        assert_eq!(lib.needed(), 7);
        assert_eq!(lib.fallback_needed(), 5);
        lib.begin(RequestId(1));
        for r in 0..5 {
            lib.on_reply(&reply(r, 1, 1, 1));
        }
        assert_eq!(lib.outstanding(), 1);
        let status = lib.try_fallback_complete(RequestId(1)).unwrap();
        assert!(matches!(
            status,
            RequestStatus::Complete { matching: 5, .. }
        ));
        assert!(lib.try_fallback_complete(RequestId(1)).is_none());
    }

    #[test]
    fn fallback_does_not_fire_below_threshold() {
        let mut lib = library(ProtocolId::Zyzzyva, QuorumRule::AllReplicas);
        lib.begin(RequestId(1));
        for r in 0..4 {
            lib.on_reply(&reply(r, 1, 1, 1));
        }
        assert!(lib.try_fallback_complete(RequestId(1)).is_none());
    }

    #[test]
    fn result_matches_key_agrees_with_result_key() {
        let results = [
            KvResult::Value(Some(vec![1, 2, 3].into())),
            KvResult::Value(Some(vec![1, 2, 4].into())),
            KvResult::Value(None),
            KvResult::Written,
            KvResult::Noop,
            KvResult::Range(vec![(1, vec![9].into()), (4, vec![8].into())]),
            KvResult::Range(vec![(2, vec![9].into()), (3, vec![8].into())]),
        ];
        for a in &results {
            for b in &results {
                assert_eq!(
                    result_matches_key(a, &result_key(b)),
                    result_key(a) == result_key(b),
                    "{a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn late_replies_after_completion_report_complete() {
        let mut lib = library(ProtocolId::FlexiBft, QuorumRule::FPlusOne);
        lib.begin(RequestId(1));
        for r in 0..3 {
            lib.on_reply(&reply(r, 1, 1, 1));
        }
        assert!(matches!(
            lib.on_reply(&reply(3, 1, 1, 1)),
            RequestStatus::Complete { .. }
        ));
        assert_eq!(lib.completed(), 1);
        lib.forget(RequestId(1));
        assert_eq!(lib.outstanding(), 0);
    }
}
