//! Client-request batching at the primary.
//!
//! ResilientDB (the fabric the paper builds on) batches client requests both
//! at the client and at the primary; consensus is then run once per batch.
//! The [`Batcher`] accumulates incoming transactions and releases a full
//! batch as soon as `batch_size` transactions are available, or a partial
//! batch when the engine decides to flush (on a `BatchFlush` timer).

use flexitrust_crypto::make_batch;
use flexitrust_types::{Batch, Transaction};
use std::collections::VecDeque;

/// Accumulates transactions into consensus batches.
#[derive(Debug, Default)]
pub struct Batcher {
    batch_size: usize,
    pending: VecDeque<Transaction>,
    batches_produced: u64,
}

impl Batcher {
    /// Creates a batcher producing batches of `batch_size` transactions.
    pub fn new(batch_size: usize) -> Self {
        Batcher {
            batch_size: batch_size.max(1),
            pending: VecDeque::new(),
            batches_produced: 0,
        }
    }

    /// The configured batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Number of transactions waiting for a batch.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Total number of batches produced so far.
    pub fn batches_produced(&self) -> u64 {
        self.batches_produced
    }

    /// Adds transactions and returns every *full* batch they complete.
    pub fn push(&mut self, txns: Vec<Transaction>) -> Vec<Batch> {
        self.pending.extend(txns);
        let mut out = Vec::new();
        while self.pending.len() >= self.batch_size {
            let txns: Vec<Transaction> = self.pending.drain(..self.batch_size).collect();
            self.batches_produced += 1;
            out.push(make_batch(txns));
        }
        out
    }

    /// Releases whatever is pending as a (possibly smaller) batch; returns
    /// `None` when nothing is pending.
    pub fn flush(&mut self) -> Option<Batch> {
        if self.pending.is_empty() {
            return None;
        }
        let txns: Vec<Transaction> = self.pending.drain(..).collect();
        self.batches_produced += 1;
        Some(make_batch(txns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexitrust_types::{ClientId, KvOp, RequestId};

    fn txns(n: usize) -> Vec<Transaction> {
        (0..n)
            .map(|i| {
                Transaction::new(
                    ClientId(1),
                    RequestId(i as u64),
                    KvOp::Read { key: i as u64 },
                )
            })
            .collect()
    }

    #[test]
    fn full_batches_are_released_eagerly() {
        let mut b = Batcher::new(10);
        assert!(b.push(txns(9)).is_empty());
        assert_eq!(b.pending_len(), 9);
        let out = b.push(txns(11));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].len(), 10);
        assert_eq!(out[1].len(), 10);
        assert_eq!(b.pending_len(), 0);
        assert_eq!(b.batches_produced(), 2);
    }

    #[test]
    fn flush_releases_partial_batches() {
        let mut b = Batcher::new(100);
        b.push(txns(5));
        let batch = b.flush().unwrap();
        assert_eq!(batch.len(), 5);
        assert!(b.flush().is_none());
    }

    #[test]
    fn batches_carry_correct_digests() {
        let mut b = Batcher::new(3);
        let out = b.push(txns(3));
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].digest(),
            flexitrust_crypto::digest_batch(out[0].txns())
        );
    }

    #[test]
    fn batch_size_is_clamped_to_one() {
        let mut b = Batcher::new(0);
        assert_eq!(b.batch_size(), 1);
        assert_eq!(b.push(txns(2)).len(), 2);
    }

    #[test]
    fn ordering_is_preserved() {
        let mut b = Batcher::new(4);
        let out = b.push(txns(4));
        let ids: Vec<u64> = out[0].txns().iter().map(|t| t.request().0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }
}
