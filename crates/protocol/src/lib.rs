//! Protocol-agnostic consensus infrastructure.
//!
//! Every protocol in this repository — the FlexiTrust suite in
//! `flexitrust-core` and the BFT / trust-BFT baselines in
//! `flexitrust-baselines` — is written as a pure, event-driven state machine
//! implementing the [`ConsensusEngine`] trait: it receives client requests,
//! peer messages and timer expirations, and emits [`Action`]s (sends,
//! broadcasts, client replies, timer updates). Engines never touch the
//! network, clocks or threads, which lets the *same* protocol code run under
//! the real threaded runtime (`flexitrust-runtime`) for correctness and under
//! the discrete-event simulator (`flexitrust-sim`) for the paper's
//! performance evaluation.
//!
//! The crate also hosts the building blocks the protocols share: the unified
//! message vocabulary ([`messages::Message`]), quorum certificates
//! ([`quorum::CertificateTracker`]), request batching ([`batcher::Batcher`]),
//! the per-replica common state ([`replica::ReplicaCore`]), the client-side
//! library ([`client::ClientLibrary`]), view-change planning
//! ([`viewchange`]) and the Figure 1 protocol property table
//! ([`properties::ProtocolProperties`]).

pub mod actions;
pub mod batcher;
pub mod client;
pub mod engine;
pub mod messages;
pub mod properties;
pub mod quorum;
pub mod replica;
pub mod viewchange;

pub use actions::{Action, Outbox};
pub use batcher::Batcher;
pub use client::{result_key, result_matches_key, ClientLibrary, KvResultKey, RequestStatus};
pub use engine::{ConsensusEngine, TimerKind};
pub use messages::{unshare, ClientReply, Message, PreparedProof, SharedMessage};
pub use properties::{MemoryFootprint, ProtocolProperties, TrustedAbstraction};
pub use quorum::CertificateTracker;
pub use replica::ReplicaCore;
pub use viewchange::NewViewPlanner;
