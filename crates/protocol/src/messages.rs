//! The unified protocol message vocabulary.
//!
//! All protocols studied by the paper are PBFT-shaped: a primary proposes
//! (`PrePrepare`), replicas vote in one or two all-to-all phases (`Prepare`,
//! `Commit`), everyone periodically checkpoints, and view changes replace a
//! faulty primary. trust-bft and FlexiTrust protocols additionally carry
//! trusted-component [`Attestation`]s inside these messages. Using a single
//! message enum keeps the network layers (simulator, threaded runtime)
//! protocol-independent; each engine simply ignores message kinds it never
//! sends.

use flexitrust_trusted::Attestation;
use flexitrust_types::{
    Batch, ClientId, Digest, KvResult, ReplicaId, RequestId, SeqNum, StateSnapshot, Transaction,
    View,
};
use std::sync::Arc;

/// A message as it travels between replicas: one allocation at the sender,
/// shared by reference with every recipient. A broadcast's fan-out is a
/// reference-count bump per destination — the payload bytes (the batch
/// behind its own `Arc`, attestations, digests) are never copied.
pub type SharedMessage = Arc<Message>;

/// Recovers an owned [`Message`] from a shared handle for engine delivery.
///
/// When the handle is the last one (a unicast, or the final copy of a
/// broadcast) the message moves out for free; otherwise the shallow clone
/// copies only the enum skeleton — batches and proof sets share their
/// `Arc`-backed payloads, so no transaction bytes are duplicated either
/// way.
pub fn unshare(msg: SharedMessage) -> Message {
    Arc::try_unwrap(msg).unwrap_or_else(|shared| (*shared).clone())
}

/// Proof that a batch was prepared (or committed) in some view; carried in
/// `ViewChange` messages so the new primary can re-propose it.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedProof {
    /// The view in which the batch was prepared.
    pub view: View,
    /// The sequence number it was prepared at.
    pub seq: SeqNum,
    /// Digest of the prepared batch.
    pub digest: Digest,
    /// The batch itself (needed so the new primary can re-propose it).
    pub batch: Batch,
    /// The primary's trusted attestation, when the protocol uses one.
    pub attestation: Option<Attestation>,
    /// How many matching `Prepare` votes backed this proof.
    pub prepare_votes: usize,
}

/// One reply from a replica to a client.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientReply {
    /// The client the reply is addressed to.
    pub client: ClientId,
    /// The client's request id being answered.
    pub request: RequestId,
    /// The sequence number the transaction executed at.
    pub seq: SeqNum,
    /// The view in which it executed.
    pub view: View,
    /// The replica sending the reply.
    pub replica: ReplicaId,
    /// The execution result.
    pub result: KvResult,
    /// Whether this reply is speculative (Zyzzyva/MinZZ/Flexi-ZZ execute
    /// before the batch is known to be committed).
    pub speculative: bool,
}

impl ClientReply {
    /// Exact wire size of the reply in bytes, equal to the canonical
    /// codec's reply frame (`flexitrust-wire`): the frame header (length
    /// prefix + sender replica + kind tag), the client / request / seq /
    /// view identifiers, the speculative flag, the encoded execution
    /// result, and the 32-byte channel-authenticator slot. Feeds the
    /// simulator's client-link bandwidth model.
    pub fn wire_size_bytes(&self) -> usize {
        // len prefix + sender + kind tag.
        const FRAME: usize = 4 + 4 + 1;
        const FIELDS: usize = 8 + 8 + 8 + 8 + 1;
        const MAC: usize = 32;
        let result = match &self.result {
            KvResult::Value(None) => 1 + 1,
            KvResult::Value(Some(v)) => 1 + 1 + 4 + v.len(),
            KvResult::Written | KvResult::Noop => 1,
            KvResult::Range(rows) => {
                1 + 4 + rows.iter().map(|(_, v)| 8 + 4 + v.len()).sum::<usize>()
            }
        };
        FRAME + FIELDS + result + MAC
    }
}

/// Protocol messages exchanged between replicas (and, for
/// [`Message::ClientRetry`], from clients to replicas).
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// The primary's proposal binding a batch to a sequence number.
    PrePrepare {
        /// Proposing view.
        view: View,
        /// Proposed sequence number.
        seq: SeqNum,
        /// The proposed batch of transactions.
        batch: Batch,
        /// Attestation from the primary's trusted component (trust-bft and
        /// FlexiTrust protocols; `None` for plain BFT).
        attestation: Option<Attestation>,
    },
    /// A replica's vote supporting a proposal.
    Prepare {
        /// Voting view.
        view: View,
        /// Sequence number being voted on.
        seq: SeqNum,
        /// Digest of the batch being supported.
        digest: Digest,
        /// Attestation from the voter's trusted component (trust-bft
        /// protocols attest every outgoing message; FlexiTrust does not).
        attestation: Option<Attestation>,
    },
    /// The second voting phase of three-phase protocols (PBFT, PBFT-EA).
    Commit {
        /// Voting view.
        view: View,
        /// Sequence number being committed.
        seq: SeqNum,
        /// Digest of the batch being committed.
        digest: Digest,
        /// Attestation from the voter's trusted component, if any.
        attestation: Option<Attestation>,
    },
    /// Periodic state checkpoint.
    Checkpoint {
        /// The last sequence number covered.
        seq: SeqNum,
        /// Digest of the replica state after executing up to `seq`.
        state_digest: Digest,
        /// Attestation over the checkpoint from the trusted component, when
        /// the protocol keeps trusted state.
        attestation: Option<Attestation>,
    },
    /// Vote to replace the current primary.
    ViewChange {
        /// The view the sender wants to move to.
        new_view: View,
        /// The sender's last stable checkpoint.
        last_stable: SeqNum,
        /// Proofs of batches prepared (or speculatively executed) by the
        /// sender that must survive into the new view.
        prepared: Vec<PreparedProof>,
    },
    /// The new primary's announcement of the new view.
    NewView {
        /// The view being started.
        view: View,
        /// Number of `ViewChange` messages backing this announcement.
        supporting_votes: usize,
        /// Re-proposals, in sequence-number order (gaps filled with no-ops).
        proposals: Vec<(SeqNum, Batch, Option<Attestation>)>,
        /// Attestation over the new primary's freshly created counter, when
        /// the protocol uses trusted counters.
        counter_attestation: Option<Attestation>,
    },
    /// A client re-broadcasting a transaction it believes is stuck; replicas
    /// either answer from their reply cache or forward it to the primary and
    /// start a view-change timer (Flexi-ZZ §8.3, and the complaint step of
    /// the §5 responsiveness analysis).
    ClientRetry {
        /// The transaction the client wants executed.
        txn: Transaction,
    },
    /// Forwarding of client transactions from a backup to the primary.
    ForwardRequest {
        /// The transactions being forwarded.
        txns: Vec<Transaction>,
    },
    /// A recovering replica asking peers for checkpoint state transfer: it
    /// has executed up to `last_executed` and wants the latest stable
    /// checkpoint past that point.
    CheckpointRequest {
        /// The requester's last executed sequence number.
        last_executed: SeqNum,
    },
    /// Checkpoint state transfer: the sender's stable checkpoint state plus
    /// the committed batches after it, so the receiver can install the
    /// snapshot and replay forward (the `CheckpointLog` rejoin path).
    CheckpointState {
        /// The stable checkpoint's sequence number.
        seq: SeqNum,
        /// Full executed state at `seq`.
        snapshot: StateSnapshot,
        /// Committed batches after `seq`, in ascending sequence order.
        batches: Vec<(SeqNum, Batch)>,
    },
}

impl Message {
    /// Short human-readable label, used in traces and tests.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::PrePrepare { .. } => "PrePrepare",
            Message::Prepare { .. } => "Prepare",
            Message::Commit { .. } => "Commit",
            Message::Checkpoint { .. } => "Checkpoint",
            Message::ViewChange { .. } => "ViewChange",
            Message::NewView { .. } => "NewView",
            Message::ClientRetry { .. } => "ClientRetry",
            Message::ForwardRequest { .. } => "ForwardRequest",
            Message::CheckpointRequest { .. } => "CheckpointRequest",
            Message::CheckpointState { .. } => "CheckpointState",
        }
    }

    /// The view the message belongs to, when it carries one.
    pub fn view(&self) -> Option<View> {
        match self {
            Message::PrePrepare { view, .. }
            | Message::Prepare { view, .. }
            | Message::Commit { view, .. }
            | Message::NewView { view, .. } => Some(*view),
            Message::ViewChange { new_view, .. } => Some(*new_view),
            _ => None,
        }
    }

    /// The sequence number the message refers to, when it carries one.
    pub fn seq(&self) -> Option<SeqNum> {
        match self {
            Message::PrePrepare { seq, .. }
            | Message::Prepare { seq, .. }
            | Message::Commit { seq, .. }
            | Message::Checkpoint { seq, .. }
            | Message::CheckpointState { seq, .. } => Some(*seq),
            _ => None,
        }
    }

    /// Number of trusted-component attestations a receiver must verify.
    pub fn attestation_count(&self) -> usize {
        match self {
            Message::PrePrepare { attestation, .. }
            | Message::Prepare { attestation, .. }
            | Message::Commit { attestation, .. }
            | Message::Checkpoint { attestation, .. } => usize::from(attestation.is_some()),
            Message::ViewChange { prepared, .. } => {
                prepared.iter().filter(|p| p.attestation.is_some()).count()
            }
            Message::NewView {
                proposals,
                counter_attestation,
                ..
            } => {
                proposals.iter().filter(|(_, _, a)| a.is_some()).count()
                    + usize::from(counter_attestation.is_some())
            }
            Message::ClientRetry { .. }
            | Message::ForwardRequest { .. }
            | Message::CheckpointRequest { .. }
            | Message::CheckpointState { .. } => 0,
        }
    }

    /// Exact wire size of the message in bytes: the length of the frame the
    /// canonical codec (`flexitrust-wire`) produces for it, pinned equal by
    /// proptest (`tests/wire_codec.rs`). The frame is the length prefix,
    /// the sender id, the kind tag, two fixed `u64` header slots (the
    /// variant's view/seq-shaped pair), the variant body — batches,
    /// digests, optional attestations at the exact trusted-substrate
    /// encoding ([`Attestation::WIRE_SIZE`]) behind one-byte presence
    /// flags — and the 32-byte channel-authenticator slot. The simulator's
    /// bandwidth model (delivery time = latency + size/bandwidth) and
    /// per-byte CPU model both consume this, so the sim charges the same
    /// bytes the TCP transport carries.
    pub fn wire_size_bytes(&self) -> usize {
        // Length prefix + sender id + kind tag + the two header slots.
        const FIELDS: usize = 4 + 4 + 1 + 8 + 8;
        // HMAC-SHA256 channel authenticator.
        const MAC: usize = 32;
        const HEADER: usize = FIELDS + MAC;
        // An optional attestation: presence byte, plus the encoding.
        const ATTEST: usize = 1 + Attestation::WIRE_SIZE;
        const NO_ATTEST: usize = 1;
        const DIGEST: usize = 32;
        // A `u32` collection count prefix.
        const COUNT: usize = 4;
        let att = |a: &Option<Attestation>| if a.is_some() { ATTEST } else { NO_ATTEST };
        match self {
            Message::PrePrepare {
                batch, attestation, ..
            } => HEADER + att(attestation) + batch.wire_size(),
            Message::Prepare { attestation, .. } | Message::Commit { attestation, .. } => {
                HEADER + DIGEST + att(attestation)
            }
            Message::Checkpoint { attestation, .. } => HEADER + DIGEST + att(attestation),
            Message::ViewChange { prepared, .. } => {
                HEADER
                    + COUNT
                    + prepared
                        .iter()
                        .map(|p| {
                            // Per-proof header (view + seq + digest + vote
                            // count) plus the re-proposable batch and its
                            // attestation slot.
                            8 + 8 + DIGEST + 4 + p.batch.wire_size() + att(&p.attestation)
                        })
                        .sum::<usize>()
            }
            Message::NewView {
                proposals,
                counter_attestation,
                ..
            } => {
                HEADER
                    + att(counter_attestation)
                    + COUNT
                    + proposals
                        .iter()
                        .map(|(_, b, a)| 8 + b.wire_size() + att(a))
                        .sum::<usize>()
            }
            Message::ClientRetry { txn } => HEADER + txn.wire_size(),
            Message::ForwardRequest { txns } => {
                HEADER + COUNT + txns.iter().map(Transaction::wire_size).sum::<usize>()
            }
            Message::CheckpointRequest { .. } => HEADER,
            Message::CheckpointState {
                snapshot, batches, ..
            } => {
                HEADER
                    + snapshot.wire_size()
                    + COUNT
                    + batches
                        .iter()
                        .map(|(_, b)| 8 + b.wire_size())
                        .sum::<usize>()
            }
        }
    }

    /// Whether this message kind is on the consensus critical path (used by
    /// the simulator to prioritise work at saturated replicas).
    pub fn is_critical_path(&self) -> bool {
        matches!(
            self,
            Message::PrePrepare { .. } | Message::Prepare { .. } | Message::Commit { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexitrust_types::{ClientId, KvOp, RequestId};

    fn batch() -> Batch {
        Batch::new(
            vec![Transaction::new(
                ClientId(1),
                RequestId(1),
                KvOp::Read { key: 1 },
            )],
            Digest::from_u64_tag(1),
        )
    }

    fn attestation() -> Attestation {
        Attestation {
            host: ReplicaId(0),
            counter: 0,
            value: 1,
            digest: Digest::from_u64_tag(1),
            kind: flexitrust_trusted::AttestKind::CounterBind,
            signature: flexitrust_crypto::Signature::zero(),
        }
    }

    #[test]
    fn kinds_and_views_are_reported() {
        let m = Message::PrePrepare {
            view: View(3),
            seq: SeqNum(7),
            batch: batch(),
            attestation: None,
        };
        assert_eq!(m.kind(), "PrePrepare");
        assert_eq!(m.view(), Some(View(3)));
        assert_eq!(m.seq(), Some(SeqNum(7)));
        assert!(m.is_critical_path());

        let vc = Message::ViewChange {
            new_view: View(4),
            last_stable: SeqNum(0),
            prepared: vec![],
        };
        assert_eq!(vc.view(), Some(View(4)));
        assert_eq!(vc.seq(), None);
        assert!(!vc.is_critical_path());
    }

    #[test]
    fn attestation_counts_follow_contents() {
        let plain = Message::Prepare {
            view: View(0),
            seq: SeqNum(1),
            digest: Digest::ZERO,
            attestation: None,
        };
        assert_eq!(plain.attestation_count(), 0);

        let attested = Message::Prepare {
            view: View(0),
            seq: SeqNum(1),
            digest: Digest::ZERO,
            attestation: Some(attestation()),
        };
        assert_eq!(attested.attestation_count(), 1);

        let vc = Message::ViewChange {
            new_view: View(1),
            last_stable: SeqNum(0),
            prepared: vec![
                PreparedProof {
                    view: View(0),
                    seq: SeqNum(1),
                    digest: Digest::ZERO,
                    batch: batch(),
                    attestation: Some(attestation()),
                    prepare_votes: 3,
                },
                PreparedProof {
                    view: View(0),
                    seq: SeqNum(2),
                    digest: Digest::ZERO,
                    batch: batch(),
                    attestation: None,
                    prepare_votes: 3,
                },
            ],
        };
        assert_eq!(vc.attestation_count(), 1);
    }

    #[test]
    fn wire_sizes_scale_with_payload() {
        let small = Message::Prepare {
            view: View(0),
            seq: SeqNum(1),
            digest: Digest::ZERO,
            attestation: None,
        };
        let preprepare = Message::PrePrepare {
            view: View(0),
            seq: SeqNum(1),
            batch: batch(),
            attestation: Some(attestation()),
        };
        assert!(preprepare.wire_size_bytes() > small.wire_size_bytes());
        let attested_prepare = Message::Prepare {
            view: View(0),
            seq: SeqNum(1),
            digest: Digest::ZERO,
            attestation: Some(attestation()),
        };
        assert!(attested_prepare.wire_size_bytes() > small.wire_size_bytes());
    }

    #[test]
    fn wire_size_bytes_accounts_for_attestations_and_batch_bytes() {
        let plain = Message::Prepare {
            view: View(0),
            seq: SeqNum(1),
            digest: Digest::ZERO,
            attestation: None,
        };
        let attested = Message::Prepare {
            view: View(0),
            seq: SeqNum(1),
            digest: Digest::ZERO,
            attestation: Some(attestation()),
        };
        // An attestation adds exactly its trusted-substrate encoding.
        assert_eq!(
            attested.wire_size_bytes() - plain.wire_size_bytes(),
            Attestation::WIRE_SIZE
        );
        // A pre-prepare carries the whole batch.
        let preprepare = Message::PrePrepare {
            view: View(0),
            seq: SeqNum(1),
            batch: batch(),
            attestation: None,
        };
        assert!(preprepare.wire_size_bytes() >= plain.wire_size_bytes() - 32 + batch().wire_size());
    }

    #[test]
    fn checkpoint_transfer_messages_report_kind_seq_and_size() {
        let request = Message::CheckpointRequest {
            last_executed: SeqNum(40),
        };
        assert_eq!(request.kind(), "CheckpointRequest");
        assert_eq!(request.seq(), None);
        assert_eq!(request.attestation_count(), 0);
        assert!(!request.is_critical_path());

        let state = Message::CheckpointState {
            seq: SeqNum(100),
            snapshot: StateSnapshot {
                entries: vec![(7, vec![1u8; 16].into())],
                applied_mutations: 1,
                fingerprint: 42,
            },
            batches: vec![(SeqNum(101), batch())],
        };
        assert_eq!(state.kind(), "CheckpointState");
        assert_eq!(state.seq(), Some(SeqNum(100)));
        assert_eq!(state.attestation_count(), 0);
        // The state transfer carries the snapshot and the replay batches.
        assert_eq!(
            state.wire_size_bytes(),
            request.wire_size_bytes() + (8 + 8 + 4 + (8 + 4 + 16)) + 4 + (8 + batch().wire_size())
        );
    }

    #[test]
    fn newview_attestations_count_counter_and_proposals() {
        let nv = Message::NewView {
            view: View(2),
            supporting_votes: 5,
            proposals: vec![(SeqNum(1), batch(), Some(attestation()))],
            counter_attestation: Some(attestation()),
        };
        assert_eq!(nv.attestation_count(), 2);
        assert_eq!(nv.kind(), "NewView");
        // Every attestation the receiver verifies is also on the wire: the
        // counter attestation contributes exactly its encoding.
        let without_counter = Message::NewView {
            view: View(2),
            supporting_votes: 5,
            proposals: vec![(SeqNum(1), batch(), Some(attestation()))],
            counter_attestation: None,
        };
        assert_eq!(
            nv.wire_size_bytes() - without_counter.wire_size_bytes(),
            Attestation::WIRE_SIZE
        );
    }
}
