//! Engine outputs: the [`Action`] enum and the [`Outbox`] that collects them.

use crate::engine::TimerKind;
use crate::messages::{ClientReply, Message};
use flexitrust_types::{ReplicaId, SeqNum};

/// One effect requested by a protocol engine.
///
/// The hosting environment (simulator or threaded runtime) interprets these:
/// `Send`/`Broadcast` go over the network model, `Reply` goes back to the
/// client library, timers are scheduled against the host's clock, and
/// `Executed` is a pure notification used for metrics and tests.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Send a message to one replica.
    Send {
        /// Destination replica.
        to: ReplicaId,
        /// The message.
        msg: Message,
    },
    /// Send a message to every replica, including the sender (the host loops
    /// the sender's copy back so engines handle their own votes uniformly).
    Broadcast {
        /// The message.
        msg: Message,
    },
    /// Send a reply to a client.
    Reply {
        /// The reply.
        reply: ClientReply,
    },
    /// Arm (or re-arm) a timer.
    SetTimer {
        /// Which timer.
        timer: TimerKind,
        /// Delay until expiry, in microseconds.
        delay_us: u64,
    },
    /// Cancel a pending timer, if armed.
    CancelTimer {
        /// Which timer.
        timer: TimerKind,
    },
    /// Notification that the batch at `seq` was executed (metrics only).
    Executed {
        /// The executed sequence number.
        seq: SeqNum,
        /// Number of transactions in the executed batch.
        txns: usize,
    },
}

/// Collects the actions produced while handling one event.
#[derive(Debug, Default)]
pub struct Outbox {
    actions: Vec<Action>,
}

impl Outbox {
    /// Creates an empty outbox.
    pub fn new() -> Self {
        Outbox::default()
    }

    /// Queues a unicast message.
    pub fn send(&mut self, to: ReplicaId, msg: Message) {
        self.actions.push(Action::Send { to, msg });
    }

    /// Queues a broadcast to all replicas (the sender included).
    pub fn broadcast(&mut self, msg: Message) {
        self.actions.push(Action::Broadcast { msg });
    }

    /// Queues a client reply.
    pub fn reply(&mut self, reply: ClientReply) {
        self.actions.push(Action::Reply { reply });
    }

    /// Arms a timer.
    pub fn set_timer(&mut self, timer: TimerKind, delay_us: u64) {
        self.actions.push(Action::SetTimer { timer, delay_us });
    }

    /// Cancels a timer.
    pub fn cancel_timer(&mut self, timer: TimerKind) {
        self.actions.push(Action::CancelTimer { timer });
    }

    /// Records an execution notification.
    pub fn executed(&mut self, seq: SeqNum, txns: usize) {
        self.actions.push(Action::Executed { seq, txns });
    }

    /// Number of queued actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Returns `true` when nothing was queued.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Drains the queued actions in emission order.
    pub fn drain(&mut self) -> Vec<Action> {
        std::mem::take(&mut self.actions)
    }

    /// Read-only view of the queued actions (used by tests).
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    /// Convenience for tests: the queued client replies.
    pub fn replies(&self) -> Vec<&ClientReply> {
        self.actions
            .iter()
            .filter_map(|a| match a {
                Action::Reply { reply } => Some(reply),
                _ => None,
            })
            .collect()
    }

    /// Convenience for tests: the queued broadcast messages.
    pub fn broadcasts(&self) -> Vec<&Message> {
        self.actions
            .iter()
            .filter_map(|a| match a {
                Action::Broadcast { msg } => Some(msg),
                _ => None,
            })
            .collect()
    }

    /// Convenience for tests: the queued unicast messages.
    pub fn sends(&self) -> Vec<(&ReplicaId, &Message)> {
        self.actions
            .iter()
            .filter_map(|a| match a {
                Action::Send { to, msg } => Some((to, msg)),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexitrust_types::{Digest, View};

    fn msg() -> Message {
        Message::Prepare {
            view: View(0),
            seq: SeqNum(1),
            digest: Digest::ZERO,
            attestation: None,
        }
    }

    #[test]
    fn outbox_preserves_emission_order() {
        let mut out = Outbox::new();
        out.broadcast(msg());
        out.send(ReplicaId(2), msg());
        out.set_timer(TimerKind::ViewChange, 1000);
        out.executed(SeqNum(1), 5);
        let actions = out.drain();
        assert_eq!(actions.len(), 4);
        assert!(matches!(actions[0], Action::Broadcast { .. }));
        assert!(matches!(
            actions[1],
            Action::Send {
                to: ReplicaId(2),
                ..
            }
        ));
        assert!(matches!(actions[2], Action::SetTimer { .. }));
        assert!(matches!(actions[3], Action::Executed { txns: 5, .. }));
        assert!(out.is_empty());
    }

    #[test]
    fn helpers_filter_by_kind() {
        let mut out = Outbox::new();
        out.broadcast(msg());
        out.send(ReplicaId(1), msg());
        out.cancel_timer(TimerKind::ViewChange);
        assert_eq!(out.broadcasts().len(), 1);
        assert_eq!(out.sends().len(), 1);
        assert_eq!(out.replies().len(), 0);
        assert_eq!(out.len(), 3);
    }
}
