//! Quorum certificate tracking.
//!
//! Every phase of every protocol boils down to "collect `q` matching votes
//! from distinct replicas, then act exactly once". [`CertificateTracker`]
//! implements that pattern generically: votes are keyed by an arbitrary key
//! (typically `(view, seq, digest)`), duplicate votes from the same replica
//! are ignored, and the tracker reports the moment the threshold is crossed
//! exactly once per key.

use flexitrust_types::ReplicaId;
use std::collections::{BTreeMap, BTreeSet};

/// Tracks votes per key and fires once when a key reaches the threshold.
///
/// Keys live in `BTreeMap`s (`K: Ord`): certificate state is part of the
/// deterministic core, and ordered maps keep any future iteration over it
/// — debugging dumps included — identical across processes.
#[derive(Debug, Clone)]
pub struct CertificateTracker<K: Ord + Clone> {
    threshold: usize,
    votes: BTreeMap<K, BTreeSet<ReplicaId>>,
    completed: BTreeMap<K, bool>,
}

impl<K: Ord + Clone> CertificateTracker<K> {
    /// Creates a tracker that completes a key at `threshold` distinct voters.
    pub fn new(threshold: usize) -> Self {
        CertificateTracker {
            threshold: threshold.max(1),
            votes: BTreeMap::new(),
            completed: BTreeMap::new(),
        }
    }

    /// The configured threshold.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Records a vote. Returns `true` exactly once per key: on the vote that
    /// brings the key to the threshold.
    pub fn vote(&mut self, key: K, voter: ReplicaId) -> bool {
        if self.completed.get(&key).copied().unwrap_or(false) {
            // Late votes after completion are counted but never re-fire.
            self.votes.entry(key).or_default().insert(voter);
            return false;
        }
        let entry = self.votes.entry(key.clone()).or_default();
        entry.insert(voter);
        if entry.len() >= self.threshold {
            self.completed.insert(key, true);
            true
        } else {
            false
        }
    }

    /// Number of distinct voters recorded for `key`.
    pub fn count(&self, key: &K) -> usize {
        self.votes.get(key).map(BTreeSet::len).unwrap_or(0)
    }

    /// Whether `key` has reached the threshold.
    pub fn is_complete(&self, key: &K) -> bool {
        self.completed.get(key).copied().unwrap_or(false)
    }

    /// The distinct voters recorded for `key`.
    pub fn voters(&self, key: &K) -> Vec<ReplicaId> {
        self.votes
            .get(key)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Forgets every key for which `retain` returns `false`; used for
    /// garbage collection below the checkpoint low-water mark.
    pub fn retain<F: Fn(&K) -> bool>(&mut self, retain: F) {
        self.votes.retain(|k, _| retain(k));
        self.completed.retain(|k, _| retain(k));
    }

    /// Number of keys currently tracked.
    pub fn tracked_keys(&self) -> usize {
        self.votes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexitrust_types::{Digest, SeqNum, View};

    type Key = (View, SeqNum, Digest);

    fn key(seq: u64) -> Key {
        (View(0), SeqNum(seq), Digest::from_u64_tag(seq))
    }

    #[test]
    fn fires_exactly_once_at_threshold() {
        let mut t: CertificateTracker<Key> = CertificateTracker::new(3);
        assert!(!t.vote(key(1), ReplicaId(0)));
        assert!(!t.vote(key(1), ReplicaId(1)));
        assert!(t.vote(key(1), ReplicaId(2)));
        // Further votes never re-fire.
        assert!(!t.vote(key(1), ReplicaId(3)));
        assert!(t.is_complete(&key(1)));
        assert_eq!(t.count(&key(1)), 4);
    }

    #[test]
    fn duplicate_voters_do_not_advance_the_count() {
        let mut t: CertificateTracker<Key> = CertificateTracker::new(2);
        assert!(!t.vote(key(1), ReplicaId(0)));
        assert!(!t.vote(key(1), ReplicaId(0)));
        assert_eq!(t.count(&key(1)), 1);
        assert!(t.vote(key(1), ReplicaId(1)));
    }

    #[test]
    fn keys_are_independent() {
        let mut t: CertificateTracker<Key> = CertificateTracker::new(2);
        t.vote(key(1), ReplicaId(0));
        t.vote(key(2), ReplicaId(0));
        assert_eq!(t.count(&key(1)), 1);
        assert_eq!(t.count(&key(2)), 1);
        assert!(!t.is_complete(&key(1)));
    }

    #[test]
    fn conflicting_digests_count_separately() {
        // A Byzantine voter voting for two different digests at the same slot
        // must not help either reach a quorum faster.
        let mut t: CertificateTracker<Key> = CertificateTracker::new(2);
        let a = (View(0), SeqNum(1), Digest::from_u64_tag(1));
        let b = (View(0), SeqNum(1), Digest::from_u64_tag(2));
        t.vote(a, ReplicaId(0));
        t.vote(b, ReplicaId(0));
        assert_eq!(t.count(&a), 1);
        assert_eq!(t.count(&b), 1);
    }

    #[test]
    fn retain_garbage_collects() {
        let mut t: CertificateTracker<Key> = CertificateTracker::new(1);
        t.vote(key(1), ReplicaId(0));
        t.vote(key(5), ReplicaId(0));
        assert_eq!(t.tracked_keys(), 2);
        t.retain(|k| k.1 > SeqNum(2));
        assert_eq!(t.tracked_keys(), 1);
        assert!(!t.is_complete(&key(1)));
        assert!(t.is_complete(&key(5)));
    }

    #[test]
    fn voters_are_reported_sorted_and_deduplicated() {
        let mut t: CertificateTracker<Key> = CertificateTracker::new(10);
        t.vote(key(1), ReplicaId(3));
        t.vote(key(1), ReplicaId(1));
        t.vote(key(1), ReplicaId(3));
        assert_eq!(t.voters(&key(1)), vec![ReplicaId(1), ReplicaId(3)]);
    }

    #[test]
    fn zero_threshold_is_clamped_to_one() {
        let mut t: CertificateTracker<u64> = CertificateTracker::new(0);
        assert_eq!(t.threshold(), 1);
        assert!(t.vote(9, ReplicaId(0)));
    }
}
