//! Static protocol properties — the rows of Figure 1 of the paper.
//!
//! Figure 1 compares the protocols along five axes: the trusted abstraction
//! they need, whether they preserve the liveness guarantees of plain BFT
//! protocols, whether they support out-of-order (parallel) consensus, how
//! much trusted memory they require, and whether only the primary needs an
//! *active* trusted component. [`ProtocolProperties`] encodes those axes so
//! that the Figure 1 reproduction is generated from the same metadata the
//! engines report, and so the simulator/client harnesses can read the reply
//! quorum and phase count from one place.

use flexitrust_types::{ProtocolId, QuorumRule, ReplicationFactor};
use std::fmt;

/// The trusted abstraction a protocol requires at replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrustedAbstraction {
    /// No trusted component (plain BFT: PBFT, Zyzzyva).
    None,
    /// Append-only trusted logs (PBFT-EA, HotStuff-M).
    Log,
    /// Monotonic counters plus a bounded log (Trinc, Hybster, Damysus).
    CounterAndLog,
    /// Monotonic counters only (MinBFT, MinZZ, CheapBFT, FlexiTrust).
    Counter,
}

impl fmt::Display for TrustedAbstraction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TrustedAbstraction::None => "-",
            TrustedAbstraction::Log => "Log",
            TrustedAbstraction::CounterAndLog => "Counter + Log",
            TrustedAbstraction::Counter => "Counter",
        };
        f.write_str(s)
    }
}

/// How much memory the trusted component needs (Figure 1, column 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemoryFootprint {
    /// No trusted state at all.
    None,
    /// A handful of counters.
    Low,
    /// Proportional to a bounded log of recent requests.
    OrderOfLogSize,
    /// Proportional to the full request log since the last checkpoint.
    High,
}

impl fmt::Display for MemoryFootprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemoryFootprint::None => "-",
            MemoryFootprint::Low => "Low",
            MemoryFootprint::OrderOfLogSize => "Order of Log-size",
            MemoryFootprint::High => "High",
        };
        f.write_str(s)
    }
}

/// Static, per-protocol properties.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtocolProperties {
    /// Which protocol this describes.
    pub id: ProtocolId,
    /// Replication factor regime (`2f+1` or `3f+1`).
    pub replication: ReplicationFactor,
    /// Trusted abstraction required at replicas.
    pub trusted_abstraction: TrustedAbstraction,
    /// Whether the protocol preserves BFT liveness for clients (Figure 1
    /// column 2; trust-bft protocols do not, per §5).
    pub bft_liveness: bool,
    /// Whether consensus instances may proceed out of order / in parallel.
    pub out_of_order: bool,
    /// Trusted memory requirement.
    pub trusted_memory: MemoryFootprint,
    /// Whether only the primary needs an active trusted component.
    pub primary_only_tc: bool,
    /// Number of message phases in the failure-free common case
    /// (PrePrepare counts as the first phase).
    pub phases: u8,
    /// How many matching replies a client needs to accept a result.
    pub reply_quorum: QuorumRule,
    /// Whether replicas execute speculatively before commit (Zyzzyva-style).
    pub speculative: bool,
}

impl ProtocolProperties {
    /// The properties of every protocol in the repository, matching Figure 1
    /// (plus the plain BFT protocols and the `oFlexi` ablations).
    pub fn for_protocol(id: ProtocolId) -> Self {
        use flexitrust_types::ProtocolId as P;
        match id {
            P::Pbft => ProtocolProperties {
                id,
                replication: ReplicationFactor::ThreeFPlusOne,
                trusted_abstraction: TrustedAbstraction::None,
                bft_liveness: true,
                out_of_order: true,
                trusted_memory: MemoryFootprint::None,
                primary_only_tc: false,
                phases: 3,
                reply_quorum: QuorumRule::FPlusOne,
                speculative: false,
            },
            P::Zyzzyva => ProtocolProperties {
                id,
                replication: ReplicationFactor::ThreeFPlusOne,
                trusted_abstraction: TrustedAbstraction::None,
                bft_liveness: true,
                out_of_order: true,
                trusted_memory: MemoryFootprint::None,
                primary_only_tc: false,
                phases: 1,
                reply_quorum: QuorumRule::AllReplicas,
                speculative: true,
            },
            P::PbftEa => ProtocolProperties {
                id,
                replication: ReplicationFactor::TwoFPlusOne,
                trusted_abstraction: TrustedAbstraction::Log,
                bft_liveness: false,
                out_of_order: false,
                trusted_memory: MemoryFootprint::High,
                primary_only_tc: false,
                phases: 3,
                reply_quorum: QuorumRule::FPlusOne,
                speculative: false,
            },
            P::OpbftEa => ProtocolProperties {
                id,
                replication: ReplicationFactor::TwoFPlusOne,
                trusted_abstraction: TrustedAbstraction::Log,
                bft_liveness: false,
                out_of_order: true,
                trusted_memory: MemoryFootprint::High,
                primary_only_tc: false,
                phases: 3,
                reply_quorum: QuorumRule::FPlusOne,
                speculative: false,
            },
            P::MinBft => ProtocolProperties {
                id,
                replication: ReplicationFactor::TwoFPlusOne,
                trusted_abstraction: TrustedAbstraction::Counter,
                bft_liveness: false,
                out_of_order: false,
                trusted_memory: MemoryFootprint::Low,
                primary_only_tc: false,
                phases: 2,
                reply_quorum: QuorumRule::FPlusOne,
                speculative: false,
            },
            P::MinZz => ProtocolProperties {
                id,
                replication: ReplicationFactor::TwoFPlusOne,
                trusted_abstraction: TrustedAbstraction::Counter,
                bft_liveness: false,
                out_of_order: false,
                trusted_memory: MemoryFootprint::Low,
                primary_only_tc: false,
                phases: 1,
                reply_quorum: QuorumRule::AllReplicas,
                speculative: true,
            },
            P::CheapBft => ProtocolProperties {
                id,
                replication: ReplicationFactor::TwoFPlusOne,
                trusted_abstraction: TrustedAbstraction::Counter,
                bft_liveness: false,
                out_of_order: false,
                trusted_memory: MemoryFootprint::Low,
                primary_only_tc: false,
                phases: 2,
                reply_quorum: QuorumRule::FPlusOne,
                speculative: false,
            },
            P::FlexiBft | P::OFlexiBft => ProtocolProperties {
                id,
                replication: ReplicationFactor::ThreeFPlusOne,
                trusted_abstraction: TrustedAbstraction::Counter,
                bft_liveness: true,
                out_of_order: id == P::FlexiBft,
                trusted_memory: MemoryFootprint::Low,
                primary_only_tc: true,
                phases: 2,
                reply_quorum: QuorumRule::FPlusOne,
                speculative: false,
            },
            P::FlexiZz | P::OFlexiZz => ProtocolProperties {
                id,
                replication: ReplicationFactor::ThreeFPlusOne,
                trusted_abstraction: TrustedAbstraction::Counter,
                bft_liveness: true,
                out_of_order: id == P::FlexiZz,
                trusted_memory: MemoryFootprint::Low,
                primary_only_tc: true,
                phases: 1,
                reply_quorum: QuorumRule::TwoFPlusOne,
                speculative: true,
            },
        }
    }

    /// The full Figure 1 table (one row per protocol the figure lists, plus
    /// the plain BFT baselines).
    pub fn figure1_rows() -> Vec<ProtocolProperties> {
        ProtocolId::ALL
            .iter()
            .map(|p| Self::for_protocol(*p))
            .collect()
    }
}

impl fmt::Display for ProtocolProperties {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<11} | {:>5} | {:<13} | {:^8} | {:^12} | {:<17} | {:^10} | {} phase(s)",
            self.id.name(),
            match self.replication {
                ReplicationFactor::TwoFPlusOne => "2f+1",
                ReplicationFactor::ThreeFPlusOne => "3f+1",
            },
            self.trusted_abstraction.to_string(),
            if self.bft_liveness { "yes" } else { "no" },
            if self.out_of_order { "yes" } else { "no" },
            self.trusted_memory.to_string(),
            if self.primary_only_tc { "yes" } else { "no" },
            self.phases
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexitrust_types::ProtocolId as P;

    #[test]
    fn figure1_trusted_abstractions_match_paper() {
        assert_eq!(
            ProtocolProperties::for_protocol(P::PbftEa).trusted_abstraction,
            TrustedAbstraction::Log
        );
        assert_eq!(
            ProtocolProperties::for_protocol(P::MinBft).trusted_abstraction,
            TrustedAbstraction::Counter
        );
        assert_eq!(
            ProtocolProperties::for_protocol(P::FlexiZz).trusted_abstraction,
            TrustedAbstraction::Counter
        );
        assert_eq!(
            ProtocolProperties::for_protocol(P::Pbft).trusted_abstraction,
            TrustedAbstraction::None
        );
    }

    #[test]
    fn only_flexitrust_needs_primary_only_tc() {
        for p in P::ALL {
            let props = ProtocolProperties::for_protocol(p);
            assert_eq!(
                props.primary_only_tc,
                p.is_flexitrust(),
                "primary-only TC flag wrong for {p}"
            );
        }
    }

    #[test]
    fn trust_bft_protocols_lose_bft_liveness() {
        for p in [P::PbftEa, P::MinBft, P::MinZz, P::CheapBft, P::OpbftEa] {
            assert!(!ProtocolProperties::for_protocol(p).bft_liveness, "{p}");
        }
        for p in [P::Pbft, P::Zyzzyva, P::FlexiBft, P::FlexiZz] {
            assert!(ProtocolProperties::for_protocol(p).bft_liveness, "{p}");
        }
    }

    #[test]
    fn out_of_order_matches_parallelism_column() {
        assert!(ProtocolProperties::for_protocol(P::FlexiBft).out_of_order);
        assert!(ProtocolProperties::for_protocol(P::FlexiZz).out_of_order);
        assert!(!ProtocolProperties::for_protocol(P::OFlexiBft).out_of_order);
        assert!(!ProtocolProperties::for_protocol(P::MinBft).out_of_order);
    }

    #[test]
    fn phase_counts_match_protocol_descriptions() {
        assert_eq!(ProtocolProperties::for_protocol(P::Pbft).phases, 3);
        assert_eq!(ProtocolProperties::for_protocol(P::PbftEa).phases, 3);
        assert_eq!(ProtocolProperties::for_protocol(P::MinBft).phases, 2);
        assert_eq!(ProtocolProperties::for_protocol(P::MinZz).phases, 1);
        assert_eq!(ProtocolProperties::for_protocol(P::FlexiBft).phases, 2);
        assert_eq!(ProtocolProperties::for_protocol(P::FlexiZz).phases, 1);
        assert_eq!(ProtocolProperties::for_protocol(P::Zyzzyva).phases, 1);
    }

    #[test]
    fn reply_quorums_match_paper() {
        use flexitrust_types::QuorumRule as Q;
        assert_eq!(
            ProtocolProperties::for_protocol(P::Zyzzyva).reply_quorum,
            Q::AllReplicas
        );
        assert_eq!(
            ProtocolProperties::for_protocol(P::MinZz).reply_quorum,
            Q::AllReplicas
        );
        assert_eq!(
            ProtocolProperties::for_protocol(P::FlexiZz).reply_quorum,
            Q::TwoFPlusOne
        );
        assert_eq!(
            ProtocolProperties::for_protocol(P::FlexiBft).reply_quorum,
            Q::FPlusOne
        );
        assert_eq!(
            ProtocolProperties::for_protocol(P::MinBft).reply_quorum,
            Q::FPlusOne
        );
    }

    #[test]
    fn memory_footprints_match_figure1() {
        assert_eq!(
            ProtocolProperties::for_protocol(P::PbftEa).trusted_memory,
            MemoryFootprint::High
        );
        assert_eq!(
            ProtocolProperties::for_protocol(P::MinBft).trusted_memory,
            MemoryFootprint::Low
        );
        assert_eq!(
            ProtocolProperties::for_protocol(P::FlexiZz).trusted_memory,
            MemoryFootprint::Low
        );
        assert_eq!(
            ProtocolProperties::for_protocol(P::Pbft).trusted_memory,
            MemoryFootprint::None
        );
    }

    #[test]
    fn figure1_rows_cover_every_protocol_and_render() {
        let rows = ProtocolProperties::figure1_rows();
        assert_eq!(rows.len(), P::ALL.len());
        for row in rows {
            assert!(!row.to_string().is_empty());
        }
    }

    #[test]
    fn speculative_flags() {
        assert!(ProtocolProperties::for_protocol(P::Zyzzyva).speculative);
        assert!(ProtocolProperties::for_protocol(P::MinZz).speculative);
        assert!(ProtocolProperties::for_protocol(P::FlexiZz).speculative);
        assert!(!ProtocolProperties::for_protocol(P::FlexiBft).speculative);
        assert!(!ProtocolProperties::for_protocol(P::Pbft).speculative);
    }
}
