//! Stand-in for `ed25519-dalek` (the build environment cannot fetch
//! crates.io). It reproduces the subset of the v2 API this workspace uses —
//! `SigningKey`, `VerifyingKey`, `Signature`, and the `Signer`/`Verifier`
//! traits — with SHA-256-based deterministic signatures instead of real
//! curve25519 arithmetic.
//!
//! Semantics preserved for the workspace's purposes:
//!
//! * signatures are deterministic functions of (key, message);
//! * verification succeeds exactly for the signing key's signature over the
//!   unmodified message, so tampering with either is detected;
//! * distinct seeds yield distinct public keys and unforgeable-within-the-
//!   workspace signatures (a key derived from a different seed never
//!   verifies).
//!
//! NOT preserved: real public-key cryptography. A `VerifyingKey` internally
//! carries the seed so it can recompute the keyed hash; do not use this shim
//! outside simulation/testing.

use sha2::{Digest, Sha256};

const PUBLIC_DOMAIN: &[u8] = b"flexitrust-ed25519-shim/public";
const SIG_DOMAIN_1: &[u8] = b"flexitrust-ed25519-shim/sig1";
const SIG_DOMAIN_2: &[u8] = b"flexitrust-ed25519-shim/sig2";

/// Error returned when signature verification fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignatureError;

impl std::fmt::Display for SignatureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("signature verification failed")
    }
}

impl std::error::Error for SignatureError {}

/// Objects that can sign messages.
pub trait Signer<S> {
    /// Signs `msg`.
    fn sign(&self, msg: &[u8]) -> S;
}

/// Objects that can verify signatures.
pub trait Verifier<S> {
    /// Verifies `signature` over `msg`.
    fn verify(&self, msg: &[u8], signature: &S) -> Result<(), SignatureError>;
}

/// A detached 64-byte signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Signature {
    bytes: [u8; 64],
}

impl Signature {
    /// Builds a signature from raw bytes.
    pub fn from_bytes(bytes: &[u8; 64]) -> Self {
        Signature { bytes: *bytes }
    }

    /// The raw signature bytes.
    pub fn to_bytes(&self) -> [u8; 64] {
        self.bytes
    }
}

fn tagged_hash(domain: &[u8], seed: &[u8; 32], msg: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(domain);
    h.update(seed);
    h.update(msg);
    h.finalize()
}

/// A signing key derived from a 32-byte seed.
#[derive(Debug, Clone)]
pub struct SigningKey {
    seed: [u8; 32],
}

impl SigningKey {
    /// Generates a key from a random source.
    pub fn generate<R: rand::RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut seed = [0u8; 32];
        rng.fill_bytes(&mut seed);
        SigningKey { seed }
    }

    /// Builds a key from its 32-byte seed.
    pub fn from_bytes(seed: &[u8; 32]) -> Self {
        SigningKey { seed: *seed }
    }

    /// The key's seed bytes.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.seed
    }

    /// Derives the matching verifying key.
    pub fn verifying_key(&self) -> VerifyingKey {
        VerifyingKey {
            public: tagged_hash(PUBLIC_DOMAIN, &self.seed, &[]),
            seed: self.seed,
        }
    }
}

impl Signer<Signature> for SigningKey {
    fn sign(&self, msg: &[u8]) -> Signature {
        let mut bytes = [0u8; 64];
        bytes[..32].copy_from_slice(&tagged_hash(SIG_DOMAIN_1, &self.seed, msg));
        bytes[32..].copy_from_slice(&tagged_hash(SIG_DOMAIN_2, &self.seed, msg));
        Signature { bytes }
    }
}

/// The public half of a key pair.
///
/// The shim keeps the seed alongside the derived public bytes so that
/// verification can recompute the keyed hash; `to_bytes` exposes only the
/// derived public bytes, which is what call sites compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyingKey {
    public: [u8; 32],
    seed: [u8; 32],
}

impl VerifyingKey {
    /// The derived 32 public-key bytes.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.public
    }
}

impl Verifier<Signature> for VerifyingKey {
    fn verify(&self, msg: &[u8], signature: &Signature) -> Result<(), SignatureError> {
        let mut expected = [0u8; 64];
        expected[..32].copy_from_slice(&tagged_hash(SIG_DOMAIN_1, &self.seed, msg));
        expected[32..].copy_from_slice(&tagged_hash(SIG_DOMAIN_2, &self.seed, msg));
        if expected == signature.bytes {
            Ok(())
        } else {
            Err(SignatureError)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::OsRng;

    #[test]
    fn sign_verify_roundtrip() {
        let key = SigningKey::from_bytes(&[7u8; 32]);
        let sig = key.sign(b"message");
        key.verifying_key().verify(b"message", &sig).unwrap();
        assert!(key.verifying_key().verify(b"other", &sig).is_err());
    }

    #[test]
    fn wrong_key_rejects() {
        let a = SigningKey::from_bytes(&[1u8; 32]);
        let b = SigningKey::from_bytes(&[2u8; 32]);
        let sig = a.sign(b"msg");
        assert!(b.verifying_key().verify(b"msg", &sig).is_err());
        assert_ne!(a.verifying_key().to_bytes(), b.verifying_key().to_bytes());
    }

    #[test]
    fn signature_bytes_roundtrip() {
        let key = SigningKey::from_bytes(&[3u8; 32]);
        let sig = key.sign(b"x");
        let back = Signature::from_bytes(&sig.to_bytes());
        key.verifying_key().verify(b"x", &back).unwrap();
    }

    #[test]
    fn generated_keys_work_and_differ() {
        let mut rng = OsRng;
        let a = SigningKey::generate(&mut rng);
        let b = SigningKey::generate(&mut rng);
        assert_ne!(a.verifying_key().to_bytes(), b.verifying_key().to_bytes());
        let sig = a.sign(b"payload");
        a.verifying_key().verify(b"payload", &sig).unwrap();
    }
}
