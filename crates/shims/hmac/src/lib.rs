//! Minimal HMAC (RFC 2104) over the workspace's SHA-256, exposing the subset
//! of the `hmac` crate API in use: `Hmac<Sha256>` with the `Mac` trait's
//! `new_from_slice`, `update` and `finalize().into_bytes()`.

use sha2::{Digest, Sha256};
use std::marker::PhantomData;

const BLOCK_SIZE: usize = 64;

/// Error returned when a key cannot be used. HMAC accepts any key length, so
/// this shim never produces it, but the type keeps call sites source
/// compatible with the real crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidLength;

impl std::fmt::Display for InvalidLength {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("invalid HMAC key length")
    }
}

impl std::error::Error for InvalidLength {}

/// The finalized MAC output.
pub struct Output {
    bytes: [u8; 32],
}

impl Output {
    /// The raw MAC bytes.
    pub fn into_bytes(self) -> [u8; 32] {
        self.bytes
    }
}

/// Keyed-MAC interface matching the subset of `hmac::Mac` in use.
pub trait Mac: Sized {
    /// Creates a MAC instance from arbitrary-length key material.
    fn new_from_slice(key: &[u8]) -> Result<Self, InvalidLength>;
    /// Feeds message bytes.
    fn update(&mut self, data: &[u8]);
    /// Finalizes and returns the MAC.
    fn finalize(self) -> Output;
}

/// HMAC over a hash function; only `Hmac<Sha256>` is implemented.
pub struct Hmac<D> {
    inner: Sha256,
    opad_key: [u8; BLOCK_SIZE],
    _marker: PhantomData<D>,
}

impl Mac for Hmac<Sha256> {
    fn new_from_slice(key: &[u8]) -> Result<Self, InvalidLength> {
        let mut key_block = [0u8; BLOCK_SIZE];
        if key.len() > BLOCK_SIZE {
            let mut h = Sha256::new();
            h.update(key);
            key_block[..32].copy_from_slice(&h.finalize());
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut ipad_key = [0u8; BLOCK_SIZE];
        let mut opad_key = [0u8; BLOCK_SIZE];
        for i in 0..BLOCK_SIZE {
            ipad_key[i] = key_block[i] ^ 0x36;
            opad_key[i] = key_block[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(ipad_key);
        Ok(Hmac {
            inner,
            opad_key,
            _marker: PhantomData,
        })
    }

    fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    fn finalize(self) -> Output {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(self.opad_key);
        outer.update(inner_digest);
        Output {
            bytes: outer.finalize(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn hmac(key: &[u8], msg: &[u8]) -> [u8; 32] {
        let mut mac = Hmac::<Sha256>::new_from_slice(key).unwrap();
        mac.update(msg);
        mac.finalize().into_bytes()
    }

    #[test]
    fn rfc4231_case_1() {
        // Key = 20 bytes of 0x0b, data = "Hi There".
        let out = hmac(&[0x0b; 20], b"Hi There");
        assert_eq!(
            hex(&out),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let out = hmac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&out),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn long_keys_are_hashed_first() {
        // RFC 4231 case 6: 131-byte key.
        let out = hmac(
            &[0xaa; 131],
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&out),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn distinct_keys_give_distinct_macs() {
        assert_ne!(hmac(b"k1", b"m"), hmac(b"k2", b"m"));
        assert_ne!(hmac(b"k1", b"m1"), hmac(b"k1", b"m2"));
    }
}
