//! Minimal stand-in for `criterion` (offline build). Benches compiled
//! against it run each registered function a configurable number of times
//! and print mean wall-clock time per iteration. No statistics, plots or
//! baselines — just enough to keep `cargo bench` targets building and
//! producing useful numbers.

use std::time::Instant;

/// Default number of timed samples per benchmark.
const DEFAULT_SAMPLES: usize = 30;

/// Prevents the optimizer from discarding a computed value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Passed to the closure under test; `iter` runs and times the payload.
pub struct Bencher {
    samples: usize,
    /// Mean nanoseconds per iteration of the last `iter` call.
    last_mean_ns: f64,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            last_mean_ns: 0.0,
        }
    }

    /// Times `samples` executions of `payload`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut payload: F) {
        // One warm-up execution.
        black_box(payload());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(payload());
        }
        self.last_mean_ns = start.elapsed().as_nanos() as f64 / self.samples as f64;
    }
}

fn print_result(name: &str, mean_ns: f64) {
    if mean_ns >= 1_000_000.0 {
        println!("{name:<50} {:>12.3} ms/iter", mean_ns / 1_000_000.0);
    } else if mean_ns >= 1_000.0 {
        println!("{name:<50} {:>12.3} µs/iter", mean_ns / 1_000.0);
    } else {
        println!("{name:<50} {:>12.1} ns/iter", mean_ns);
    }
}

/// The benchmark registry/driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(DEFAULT_SAMPLES);
        f(&mut bencher);
        print_result(name, bencher.last_mean_ns);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            samples: DEFAULT_SAMPLES,
        }
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Registers and immediately runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(self.samples);
        f(&mut bencher);
        print_result(&format!("{}/{}", self.name, name), bencher.last_mean_ns);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function running each listed bench.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_payload() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.bench_function("counting", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn groups_respect_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        let mut runs = 0u32;
        group.bench_function("payload", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 5 + 1); // five samples plus one warm-up
    }
}
