//! Minimal stand-in for the `rand` crate (the build environment has no
//! crates.io access). It implements the subset of the rand 0.8 API this
//! workspace uses:
//!
//! * the [`RngCore`] / [`SeedableRng`] core traits,
//! * the [`Rng`] extension trait with `gen`, `gen_range` and `fill`,
//! * [`rngs::StdRng`] (a SplitMix64-seeded xoshiro256++) and
//!   [`rngs::OsRng`] (time/urandom seeded, for key generation only).
//!
//! Generators are deterministic under a fixed seed, which is the property the
//! workspace's simulator and tests rely on. This is NOT a cryptographic RNG.

use std::ops::{Range, RangeInclusive};

/// Core random source: 64-bit outputs and byte filling.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64 the
    /// way rand 0.8 does.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Slices fillable by [`Rng::fill`].
pub trait Fill {
    /// Fills `self` with random data.
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn try_fill<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// Convenience extension over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Fills a slice with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.try_fill(self);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// SplitMix64: seed expander and the engine behind [`rngs::OsRng`].
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(state: u64) -> Self {
        SplitMix64 { state }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Provided generators.
pub mod rngs {
    use super::{RngCore, SeedableRng, SplitMix64};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // Avoid the all-zero state, which xoshiro cannot escape.
            if s.iter().all(|w| *w == 0) {
                s = [
                    0x9e3779b97f4a7c15,
                    0x6a09e667f3bcc909,
                    0xbb67ae8584caa73b,
                    1,
                ];
            }
            StdRng { s }
        }
    }

    /// An "operating system" entropy source. This shim seeds a SplitMix64
    /// stream from the wall clock and a global counter — good enough for
    /// generating distinct, working key material in tests, but NOT
    /// cryptographically secure.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct OsRng;

    static OS_COUNTER: AtomicU64 = AtomicU64::new(0);

    impl RngCore for OsRng {
        fn next_u64(&mut self) -> u64 {
            let nanos = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.subsec_nanos() as u64 ^ (d.as_secs() << 30))
                .unwrap_or(0x5eed);
            let count = OS_COUNTER.fetch_add(1, Ordering::Relaxed);
            let mut sm = SplitMix64::new(nanos ^ count.rotate_left(32) ^ 0xd1b5_4a32_d192_ed03);
            sm.next_u64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{OsRng, StdRng};
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: u32 = rng.gen_range(1..=5);
            assert!((1..=5).contains(&y));
        }
    }

    #[test]
    fn f64_samples_are_unit_interval_and_varied() {
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<f64> = (0..1000).map(|_| rng.gen::<f64>()).collect();
        assert!(samples.iter().all(|x| (0.0..1.0).contains(x)));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn fill_covers_non_multiple_of_eight_lengths() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf[..]);
        assert!(buf.iter().any(|b| *b != 0));
    }

    #[test]
    fn os_rng_produces_distinct_values() {
        let mut rng = OsRng;
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, b);
    }
}
