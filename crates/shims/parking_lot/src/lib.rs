//! Minimal stand-in for `parking_lot` (offline build): a [`Mutex`] with the
//! poison-free `lock()` signature, backed by `std::sync::Mutex`.

use std::fmt;
use std::sync::PoisonError;

/// A mutual-exclusion primitive whose `lock` never returns a poison error
/// (matching parking_lot semantics: a panicking holder does not poison).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            Err(_) => f.write_str("Mutex { <locked> }"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_guards_mutation() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn panicking_holder_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
