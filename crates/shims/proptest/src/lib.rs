//! Minimal stand-in for `proptest` (offline build). It supports the subset
//! the workspace's property tests use:
//!
//! * the `proptest! { #![proptest_config(...)] #[test] fn f(x in strategy) {..} }` macro,
//! * integer-range strategies (`0u8..3`, `1u64..1000`, `0usize..100`),
//! * `any::<bool>()` / `any::<u64>()`,
//! * `proptest::collection::vec(strategy, size_range)`,
//! * `prop_assert!` / `prop_assert_eq!`.
//!
//! Unlike real proptest there is no shrinking; failures report the case seed
//! so a run can be reproduced (cases are generated deterministically from the
//! test name and case index).

use std::ops::Range;

pub use rand::rngs::StdRng as TestRng;
use rand::{Rng, SeedableRng};

/// A failed property-test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    /// Human-readable failure description.
    pub message: String,
}

impl TestCaseError {
    /// Builds a failure from a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values for one property-test argument.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// Strategy produced by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen::<u64>() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.gen::<u64>()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.gen::<u64>() as u32
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// is drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start < self.size.end {
                rng.gen_range(self.size.clone())
            } else {
                self.size.start
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Deterministic per-case RNG: seeded from the property name and case index.
pub fn case_rng(name: &str, case: u32) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::seed_from_u64(h ^ u64::from(case).rotate_left(32))
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} != {:?}) at {}:{}",
                stringify!($left),
                stringify!($right),
                left,
                right,
                file!(),
                line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} != {:?}) at {}:{}: {}",
                stringify!($left),
                stringify!($right),
                left,
                right,
                file!(),
                line!(),
                format!($($fmt)*)
            )));
        }
    }};
}

/// Declares property tests. Each function is expanded into a `#[test]` that
/// runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg); $($rest)*);
    };
    // Each property keeps its own attributes; `#[test]` is among them (it is
    // matched by the `meta` repetition), so the generated zero-argument
    // wrapper is collected by the test harness directly.
    (@fns ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut proptest_rng = $crate::case_rng(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&$strategy, &mut proptest_rng);)+
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                })();
                if let Err(err) = outcome {
                    panic!(
                        "property {} failed at case {case}: {}",
                        stringify!($name),
                        err
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// The glob import the tests use.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0u8..3, y in 1u64..1000) {
            prop_assert!(x < 3);
            prop_assert!((1..1000).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(0usize..100, 1..60)) {
            prop_assert!(!v.is_empty() && v.len() < 60);
            prop_assert!(v.iter().all(|x| *x < 100));
        }

        #[test]
        fn any_bool_and_u64_generate(b in any::<bool>(), n in any::<u64>()) {
            let _ = b;
            prop_assert_eq!(n, n);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics_with_case_info() {
        // No #[test] attribute on the inner property: it is invoked directly
        // below (inner items cannot be collected by the harness anyway).
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0u8..3) {
                prop_assert!(x > 200, "x was {x}");
            }
        }
        always_fails();
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::Strategy;
        let s = 0u64..1_000_000;
        let a: Vec<u64> = (0..10)
            .map(|c| s.generate(&mut crate::case_rng("t", c)))
            .collect();
        let b: Vec<u64> = (0..10)
            .map(|c| s.generate(&mut crate::case_rng("t", c)))
            .collect();
        assert_eq!(a, b);
    }
}
