//! Minimal stand-in for `crossbeam` (offline build): bounded MPSC channels
//! with the `crossbeam::channel` API surface this workspace uses, backed by
//! `std::sync::mpsc::sync_channel`.

/// Multi-producer channels.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity; the value is handed back.
        Full(T),
        /// The receiver is gone; the value is handed back.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the deadline.
        Timeout,
        /// Every sender disconnected and the channel is drained.
        Disconnected,
    }

    /// The sending half of a bounded channel.
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while the channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|e| SendError(e.0))
        }

        /// Sends `value` without blocking, failing when the channel is full
        /// or the receiver is gone.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            self.inner.try_send(value).map_err(|e| match e {
                std::sync::mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                std::sync::mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
            })
        }
    }

    /// The receiving half of a bounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives, the timeout elapses, or all
        /// senders disconnect.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvTimeoutError> {
            self.inner
                .recv()
                .map_err(|_| RecvTimeoutError::Disconnected)
        }
    }

    /// Creates a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn messages_flow_in_order() {
        let (tx, rx) = bounded(8);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(1));
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(2));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn try_send_reports_full_and_disconnected_without_blocking() {
        use super::channel::TrySendError;
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(1));
        tx.try_send(3).unwrap();
        drop(rx);
        assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
    }

    #[test]
    fn disconnect_is_reported() {
        let (tx, rx) = bounded::<u32>(1);
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn senders_clone_across_threads() {
        let (tx, rx) = bounded(16);
        let handles: Vec<_> = (0..4u32)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(i).unwrap())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}
