//! Minimal stand-in for `rand_chacha` (offline build): a real ChaCha12 block
//! function driving [`ChaCha12Rng`], implementing the workspace `rand` shim's
//! `RngCore`/`SeedableRng` traits. Deterministic under a fixed seed; stream
//! values are not guaranteed to match the upstream crate bit-for-bit.

use rand::{RngCore, SeedableRng};

/// Re-export of the core traits under the path call sites import them from
/// (`rand_chacha::rand_core::SeedableRng`).
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

const ROUNDS: usize = 12;

fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn chacha_block(key: &[u32; 8], counter: u64, out: &mut [u32; 16]) {
    let mut state: [u32; 16] = [
        0x6170_7865,
        0x3320_646e,
        0x7962_2d32,
        0x6b20_6574,
        key[0],
        key[1],
        key[2],
        key[3],
        key[4],
        key[5],
        key[6],
        key[7],
        counter as u32,
        (counter >> 32) as u32,
        0,
        0,
    ];
    let initial = state;
    for _ in 0..ROUNDS / 2 {
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for i in 0..16 {
        out[i] = state[i].wrapping_add(initial[i]);
    }
}

/// A ChaCha generator with 12 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha12Rng {
    key: [u32; 8],
    counter: u64,
    block: [u32; 16],
    index: usize,
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha12Rng {
            key,
            counter: 0,
            block: [0u32; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            chacha_block(&self.key, self.counter, &mut self.block);
            self.counter = self.counter.wrapping_add(1);
            self.index = 0;
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let draw = |seed| {
            let mut rng = ChaCha12Rng::seed_from_u64(seed);
            (0..64).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw(1), draw(1));
        assert_ne!(draw(1), draw(2));
    }

    #[test]
    fn words_look_uniform() {
        let mut rng = ChaCha12Rng::seed_from_u64(9);
        let mut ones = 0u32;
        for _ in 0..1000 {
            ones += rng.next_u64().count_ones();
        }
        // 64 000 bits, expect ~32 000 ones.
        assert!((30_000..34_000).contains(&ones), "{ones}");
    }

    #[test]
    fn fill_bytes_advances_the_stream() {
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        let mut a = [0u8; 16];
        let mut b = [0u8; 16];
        rng.fill_bytes(&mut a);
        rng.fill_bytes(&mut b);
        assert_ne!(a, b);
    }
}
