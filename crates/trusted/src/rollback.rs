//! Rollback attacks on trusted-component state (§6 of the paper).
//!
//! Existing trust-bft protocols assume trusted-component state is persistent
//! and uncorruptible. On today's hardware that assumption is shaky: SGX
//! enclave memory can be rolled back by a malicious host (power failures,
//! snapshot/restore of sealed state), and the hardware that *does* resist
//! rollback — SGX persistent counters, TPMs — is orders of magnitude slower.
//!
//! [`RollbackControl`] models the capability a malicious host has over its
//! co-located enclave: it can capture the enclave's state and later restore
//! it, *provided the hardware is not rollback-protected*. It cannot forge
//! attestations; after a rollback the enclave will simply re-issue fresh,
//! perfectly valid attestations for counter values it has already attested —
//! which is exactly what re-enables equivocation.

use crate::counter::CounterSet;
use crate::enclave::EnclaveState;
use crate::log::TrustedLog;
use flexitrust_types::{Error, Result};
use parking_lot::Mutex;
use std::sync::Arc;

/// An opaque snapshot of enclave state captured by a (malicious) host.
#[derive(Debug, Clone)]
pub struct RollbackSnapshot {
    counters: CounterSet,
    logs: TrustedLog,
}

impl RollbackSnapshot {
    pub(crate) fn new(counters: CounterSet, logs: TrustedLog) -> Self {
        RollbackSnapshot { counters, logs }
    }

    pub(crate) fn counters(&self) -> &CounterSet {
        &self.counters
    }

    pub(crate) fn logs(&self) -> &TrustedLog {
        &self.logs
    }
}

/// The rollback capability of a malicious host over its enclave.
pub struct RollbackControl {
    state: Arc<Mutex<EnclaveState>>,
    rollback_protected: bool,
    rollbacks_performed: Mutex<u64>,
}

impl RollbackControl {
    pub(crate) fn new(state: Arc<Mutex<EnclaveState>>, rollback_protected: bool) -> Self {
        RollbackControl {
            state,
            rollback_protected,
            rollbacks_performed: Mutex::new(0),
        }
    }

    /// Whether the backing hardware prevents rollback; if `true`, `restore`
    /// will always fail.
    pub fn is_protected(&self) -> bool {
        self.rollback_protected
    }

    /// Captures the current enclave state (always possible — observing state
    /// is not what rollback protection prevents).
    pub fn snapshot(&self) -> RollbackSnapshot {
        self.state.lock().snapshot()
    }

    /// Restores a previously captured snapshot, rolling the enclave back.
    ///
    /// Fails when the hardware is rollback-protected (SGX persistent
    /// counters, TPM, ADAM-CS); succeeds silently on plain SGX enclave
    /// counters, which is precisely the vulnerability §6 demonstrates.
    pub fn restore(&self, snapshot: &RollbackSnapshot) -> Result<()> {
        if self.rollback_protected {
            return Err(Error::InvalidAttestation {
                context: "hardware is rollback-protected; state restore refused".to_string(),
            });
        }
        self.state.lock().restore(snapshot);
        *self.rollbacks_performed.lock() += 1;
        Ok(())
    }

    /// Number of successful rollbacks performed through this handle.
    pub fn rollbacks_performed(&self) -> u64 {
        *self.rollbacks_performed.lock()
    }
}

#[cfg(test)]
mod tests {
    use crate::attestation::AttestationMode;
    use crate::enclave::{Enclave, EnclaveConfig};
    use crate::hardware::TrustedHardware;
    use flexitrust_types::{Digest, ReplicaId};

    #[test]
    fn rollback_reenables_equivocation_on_vulnerable_hardware() {
        // The §6 scenario at the level of the trusted component itself: after
        // a rollback, the enclave re-issues an attestation for a counter
        // value it has already bound to a *different* digest, and both
        // attestations verify.
        let enclave = Enclave::shared(EnclaveConfig::counter_only(
            ReplicaId(0),
            AttestationMode::Real,
        ));
        let registry = crate::attestation::EnclaveRegistry::deterministic(1, AttestationMode::Real);
        let control = enclave.rollback_control();
        assert!(!control.is_protected());

        let snap = control.snapshot();
        let (v1, att_t) = enclave.append_f(0, Digest::from_u64_tag(0xAAAA)).unwrap();

        control.restore(&snap).unwrap();
        let (v2, att_t_prime) = enclave.append_f(0, Digest::from_u64_tag(0xBBBB)).unwrap();

        assert_eq!(v1, v2, "both transactions bound to the same counter value");
        assert_ne!(att_t.digest, att_t_prime.digest);
        registry.verify(&att_t).unwrap();
        registry.verify(&att_t_prime).unwrap();
        assert_eq!(control.rollbacks_performed(), 1);
    }

    #[test]
    fn rollback_fails_on_protected_hardware() {
        let enclave = Enclave::shared(
            EnclaveConfig::counter_only(ReplicaId(0), AttestationMode::Counting)
                .with_hardware(TrustedHardware::typical_tpm()),
        );
        let control = enclave.rollback_control();
        assert!(control.is_protected());
        let snap = control.snapshot();
        enclave.append_f(0, Digest::from_u64_tag(1)).unwrap();
        assert!(control.restore(&snap).is_err());
        assert_eq!(control.rollbacks_performed(), 0);
        // Counter keeps its post-append value.
        assert_eq!(enclave.counter_value(0), Some(1));
    }

    #[test]
    fn snapshot_captures_logs_too() {
        let enclave = Enclave::shared(EnclaveConfig::log_based(
            ReplicaId(0),
            AttestationMode::Counting,
        ));
        let control = enclave.rollback_control();
        enclave
            .log_append(0, None, Digest::from_u64_tag(1))
            .unwrap();
        let snap = control.snapshot();
        enclave
            .log_append(0, None, Digest::from_u64_tag(2))
            .unwrap();
        control.restore(&snap).unwrap();
        // Slot 2 is free again after the rollback.
        let att = enclave
            .log_append(0, None, Digest::from_u64_tag(99))
            .unwrap();
        assert_eq!(att.value, 2);
        assert_eq!(att.digest, Digest::from_u64_tag(99));
    }
}
