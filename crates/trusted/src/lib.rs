//! Trusted-component substrate.
//!
//! Existing trust-bft protocols equip every replica `r` with a co-located
//! trusted component `t_r` (Definition 1 of the paper): a cryptographically
//! secure entity that provably performs a specific computation. Two
//! abstractions cover all protocols studied by the paper:
//!
//! * **Trusted monotonic counters** ([`counter::CounterSet`]) — `Append`
//!   binds a message digest to a counter value that may only grow (MinBFT,
//!   MinZZ, Trinc, CheapBFT); the restricted [`counter::CounterSet::append_f`]
//!   variant introduced by FlexiTrust (§8.1) has the component increment the
//!   counter internally so values stay contiguous; `Create` opens a fresh
//!   counter after a view change.
//! * **Trusted append-only logs** ([`log::TrustedLog`]) — `Append` stores the
//!   message at a slot and `Lookup` returns a signed attestation of the slot
//!   contents (PBFT-EA, HotStuff-M).
//!
//! Both produce [`Attestation`]s: digitally signed statements
//! `⟨Attest(q, k, x)⟩_{t_r}` binding value `k` of counter/log `q` to digest
//! `x`, verifiable by anyone holding the enclave registry.
//!
//! The substrate also models the two *practical* concerns the paper analyses:
//!
//! * **Access latency** ([`hardware::TrustedHardware`]) — SGX enclave
//!   counters are fast but rollbackable; SGX persistent counters and TPMs
//!   resist rollback but cost tens to hundreds of milliseconds per access
//!   (Figure 8); ADAM-CS-style counters sit in between.
//! * **Rollback attacks** ([`rollback::RollbackControl`]) — a malicious host
//!   can snapshot and restore a non-persistent enclave's state, re-enabling
//!   equivocation (§6). The [`enclave::Enclave`] exposes this capability only
//!   through an explicit attack handle so honest code cannot trip over it.

pub mod attestation;
pub mod counter;
pub mod enclave;
pub mod hardware;
pub mod log;
pub mod rollback;
pub mod stats;

pub use attestation::{AttestKind, Attestation, AttestationMode, EnclaveRegistry};
pub use counter::CounterSet;
pub use enclave::{Enclave, EnclaveConfig, SharedEnclave};
pub use hardware::TrustedHardware;
pub use log::TrustedLog;
pub use rollback::RollbackControl;
pub use stats::{TcAccessKind, TcStats, TcStatsSnapshot};
