//! Attestations and the registry used to verify them.
//!
//! An attestation `⟨Attest(q, k, x)⟩_{t_r}` is a statement signed by the
//! trusted component hosted at replica `r` asserting that counter (or log)
//! `q` holds value `k` bound to digest `x`. Replicas verify attestations by
//! checking the signature against the enclave's public key, which they obtain
//! from the [`EnclaveRegistry`] distributed at system setup.
//!
//! Enclave keys are distinct from replica keys on purpose: a Byzantine host
//! can drop, delay and replay what its enclave produced but can never *forge*
//! an attestation — that is exactly the non-equivocation property trust-bft
//! protocols rely on, and the property a rollback attack (§6) circumvents
//! without ever breaking a signature.

use ed25519_dalek::{Signer, Verifier};
use flexitrust_crypto::Signature;
use flexitrust_types::{Digest, Error, ReplicaId, Result};
use std::fmt;

/// What kind of statement the trusted component is attesting to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttestKind {
    /// A counter advanced to `value`, bound to `digest` (trusted counters).
    CounterBind,
    /// A fresh counter with identifier `counter` was created at `value`.
    CounterCreate,
    /// Log `counter` stores `digest` at slot `value` (trusted logs).
    LogSlot,
}

/// A digitally signed attestation produced by a trusted component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attestation {
    /// The replica hosting the trusted component that produced this.
    pub host: ReplicaId,
    /// The counter or log identifier (`q` in the paper).
    pub counter: u64,
    /// The attested counter value or log slot (`k` in the paper).
    pub value: u64,
    /// The digest bound to the value (`x` / `Δ` in the paper).
    pub digest: Digest,
    /// What is being attested.
    pub kind: AttestKind,
    /// Signature by the trusted component over the canonical encoding.
    pub signature: Signature,
}

impl Attestation {
    /// Exact wire size of an attestation in bytes: host id (4) + counter id
    /// (8) + value (8) + digest (32) + kind tag (1) + Ed25519 signature (64).
    /// The protocol layer's `Message::wire_size_bytes` and the simulator's
    /// bandwidth model derive message sizes from this.
    pub const WIRE_SIZE: usize = 4 + 8 + 8 + 32 + 1 + 64;

    /// The canonical byte encoding that is signed by the enclave.
    pub fn signed_bytes(
        host: ReplicaId,
        counter: u64,
        value: u64,
        digest: &Digest,
        kind: AttestKind,
    ) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 8 + 8 + 32 + 1);
        out.extend_from_slice(&host.0.to_le_bytes());
        out.extend_from_slice(&counter.to_le_bytes());
        out.extend_from_slice(&value.to_le_bytes());
        out.extend_from_slice(digest.as_bytes());
        out.push(match kind {
            AttestKind::CounterBind => 0,
            AttestKind::CounterCreate => 1,
            AttestKind::LogSlot => 2,
        });
        out
    }

    /// The canonical bytes of *this* attestation.
    pub fn bytes_to_sign(&self) -> Vec<u8> {
        Self::signed_bytes(self.host, self.counter, self.value, &self.digest, self.kind)
    }

    /// Wire size in bytes (used by the simulator bandwidth model).
    pub fn wire_size(&self) -> usize {
        Self::WIRE_SIZE
    }
}

impl fmt::Display for Attestation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Attest(host={}, q={}, k={}, x={})",
            self.host,
            self.counter,
            self.value,
            self.digest.short_hex()
        )
    }
}

/// How enclaves sign attestations.
///
/// `Real` uses Ed25519; `Counting` uses the same cheap keyed fingerprint as
/// [`flexitrust_crypto::CountingCrypto`], letting the simulator verify
/// structural integrity without paying for public-key cryptography on every
/// simulated message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttestationMode {
    /// Ed25519 signatures (threaded runtime, correctness tests).
    Real,
    /// Deterministic fingerprints with operation counting (simulator).
    Counting,
}

/// Registry of enclave verifying keys; every replica holds a handle so it
/// can verify attestations produced by any other replica's trusted
/// component. The key table sits behind an `Arc`: cloning the registry for
/// each of n replicas is a reference-count bump, not n copies of the
/// table.
#[derive(Clone)]
pub struct EnclaveRegistry {
    mode: AttestationMode,
    keys: std::sync::Arc<[ed25519_dalek::VerifyingKey]>,
}

impl EnclaveRegistry {
    /// Builds a registry for `n` replicas with deterministic enclave keys.
    ///
    /// Enclave signing keys are derived deterministically from the replica
    /// index so that tests and simulations are reproducible; see
    /// [`enclave_signing_key`].
    pub fn deterministic(n: usize, mode: AttestationMode) -> Self {
        let keys = (0..n)
            .map(|i| enclave_signing_key(ReplicaId(i as u32)).verifying_key())
            .collect();
        EnclaveRegistry { mode, keys }
    }

    /// The attestation mode of this deployment.
    pub fn mode(&self) -> AttestationMode {
        self.mode
    }

    /// Number of registered enclaves.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Returns `true` when no enclaves are registered.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Verifies an attestation against the registered enclave key.
    pub fn verify(&self, attestation: &Attestation) -> Result<()> {
        let bytes = attestation.bytes_to_sign();
        match self.mode {
            AttestationMode::Real => {
                let key =
                    self.keys
                        .get(attestation.host.as_usize())
                        .ok_or(Error::UnknownReplica {
                            replica: attestation.host,
                        })?;
                let sig = ed25519_dalek::Signature::from_bytes(attestation.signature.as_bytes());
                key.verify(&bytes, &sig)
                    .map_err(|_| Error::InvalidAttestation {
                        context: format!("bad enclave signature from {}", attestation.host),
                    })
            }
            AttestationMode::Counting => {
                if attestation.host.as_usize() >= self.keys.len() {
                    return Err(Error::UnknownReplica {
                        replica: attestation.host,
                    });
                }
                let expected = counting_fingerprint(attestation.host, &bytes);
                if attestation.signature.as_bytes()[..8] == expected.to_le_bytes() {
                    Ok(())
                } else {
                    Err(Error::InvalidAttestation {
                        context: format!("fingerprint mismatch for {}", attestation.host),
                    })
                }
            }
        }
    }
}

/// Derives the deterministic Ed25519 signing key of the enclave at `host`.
///
/// The derivation seed is disjoint from the replica/client key seeds used by
/// [`flexitrust_crypto::KeyStore::deterministic`], so a host key can never
/// verify as an enclave key or vice versa.
pub fn enclave_signing_key(host: ReplicaId) -> ed25519_dalek::SigningKey {
    let mut bytes = [0u8; 32];
    bytes[..8].copy_from_slice(&(0xE0C1_A0E0_0000_0000u64 | u64::from(host.0)).to_le_bytes());
    bytes[8..16].copy_from_slice(
        &u64::from(host.0)
            .wrapping_mul(0xff51_afd7_ed55_8ccd)
            .to_le_bytes(),
    );
    ed25519_dalek::SigningKey::from_bytes(&bytes)
}

/// The cheap keyed fingerprint used in counting mode.
pub(crate) fn counting_fingerprint(host: ReplicaId, bytes: &[u8]) -> u64 {
    let mut h: u64 = 0x9ae1_6a3b_2f90_404f ^ u64::from(host.0);
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Signs attestation bytes on behalf of the enclave at `host`.
pub(crate) fn sign_attestation(host: ReplicaId, mode: AttestationMode, bytes: &[u8]) -> Signature {
    match mode {
        AttestationMode::Real => {
            let key = enclave_signing_key(host);
            Signature(key.sign(bytes).to_bytes())
        }
        AttestationMode::Counting => {
            let fp = counting_fingerprint(host, bytes);
            let mut sig = [0u8; 64];
            sig[..8].copy_from_slice(&fp.to_le_bytes());
            Signature(sig)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_attestation(mode: AttestationMode) -> Attestation {
        let host = ReplicaId(2);
        let digest = Digest::from_u64_tag(77);
        let bytes = Attestation::signed_bytes(host, 0, 5, &digest, AttestKind::CounterBind);
        Attestation {
            host,
            counter: 0,
            value: 5,
            digest,
            kind: AttestKind::CounterBind,
            signature: sign_attestation(host, mode, &bytes),
        }
    }

    #[test]
    fn real_attestation_verifies_and_rejects_tampering() {
        let registry = EnclaveRegistry::deterministic(4, AttestationMode::Real);
        let att = make_attestation(AttestationMode::Real);
        registry.verify(&att).unwrap();

        let mut tampered = att.clone();
        tampered.value = 6;
        assert!(registry.verify(&tampered).is_err());

        let mut wrong_digest = att.clone();
        wrong_digest.digest = Digest::from_u64_tag(78);
        assert!(registry.verify(&wrong_digest).is_err());

        let mut wrong_host = att;
        wrong_host.host = ReplicaId(1);
        assert!(registry.verify(&wrong_host).is_err());
    }

    #[test]
    fn counting_attestation_verifies_and_rejects_tampering() {
        let registry = EnclaveRegistry::deterministic(4, AttestationMode::Counting);
        let att = make_attestation(AttestationMode::Counting);
        registry.verify(&att).unwrap();
        let mut tampered = att;
        tampered.counter = 9;
        assert!(registry.verify(&tampered).is_err());
    }

    #[test]
    fn host_key_cannot_forge_enclave_attestation() {
        // A byzantine host holds its *replica* key (from the crypto KeyStore)
        // but not its enclave key; a signature made with the replica key must
        // not verify as an attestation.
        let registry = EnclaveRegistry::deterministic(4, AttestationMode::Real);
        let host = ReplicaId(2);
        let keystore = flexitrust_crypto::KeyStore::deterministic(4, 0);
        let digest = Digest::from_u64_tag(1);
        let bytes = Attestation::signed_bytes(host, 0, 9, &digest, AttestKind::CounterBind);
        let forged_sig = {
            use ed25519_dalek::Signer as _;
            let k = keystore
                .signing_key(flexitrust_types::NodeId::Replica(host))
                .unwrap();
            Signature(k.sign(&bytes).to_bytes())
        };
        let forged = Attestation {
            host,
            counter: 0,
            value: 9,
            digest,
            kind: AttestKind::CounterBind,
            signature: forged_sig,
        };
        assert!(registry.verify(&forged).is_err());
    }

    #[test]
    fn unknown_host_is_rejected() {
        let registry = EnclaveRegistry::deterministic(2, AttestationMode::Real);
        let mut att = make_attestation(AttestationMode::Real);
        att.host = ReplicaId(7);
        assert!(matches!(
            registry.verify(&att),
            Err(Error::UnknownReplica { .. })
        ));
    }

    #[test]
    fn kinds_are_domain_separated() {
        // The same (host, counter, value, digest) signed as a CounterBind must
        // not verify as a CounterCreate.
        let registry = EnclaveRegistry::deterministic(4, AttestationMode::Real);
        let att = make_attestation(AttestationMode::Real);
        let mut as_create = att;
        as_create.kind = AttestKind::CounterCreate;
        assert!(registry.verify(&as_create).is_err());
    }

    #[test]
    fn display_and_wire_size() {
        let att = make_attestation(AttestationMode::Counting);
        assert!(att.to_string().contains("q=0"));
        assert!(att.wire_size() > 64);
    }

    #[test]
    fn registry_len() {
        let registry = EnclaveRegistry::deterministic(5, AttestationMode::Real);
        assert_eq!(registry.len(), 5);
        assert!(!registry.is_empty());
    }
}
