//! Trusted monotonic counters.
//!
//! A [`CounterSet`] is the in-enclave state of the counter-based trusted
//! components (MinBFT, MinZZ, Trinc, CheapBFT and the FlexiTrust protocols).
//! It supports the three operations the paper describes:
//!
//! * `Append(q, k_new, x)` — the trust-bft form: the *host* proposes the new
//!   counter value `k_new`, which must be strictly greater than the current
//!   value; the component binds `k_new` to digest `x` and returns an
//!   attestation. (§4.1)
//! * `AppendF(q, x)` — the FlexiTrust form (§8.1): the component increments
//!   the counter internally, guaranteeing contiguous values so a Byzantine
//!   primary cannot create far-future gaps.
//! * `Create(k)` — creates a fresh counter with a never-used identifier and
//!   initial value `k`; used by a new primary after a view change.
//!
//! The set is pure state — signing, latency modelling and access statistics
//! live in [`crate::enclave::Enclave`].

use flexitrust_types::{Digest, Error, Result};
use std::collections::BTreeMap;

/// State of one monotonic counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterState {
    /// Current value of the counter.
    pub value: u64,
    /// Digest most recently bound to the counter value.
    pub last_digest: Digest,
}

/// A set of monotonic counters, keyed by counter identifier `q`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSet {
    counters: BTreeMap<u64, CounterState>,
    next_fresh_id: u64,
}

impl CounterSet {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        CounterSet::default()
    }

    /// Creates a counter set with `count` counters initialised to zero, with
    /// identifiers `0..count`. Most protocols use a single counter (`q = 0`).
    pub fn with_counters(count: u64) -> Self {
        let counters = (0..count)
            .map(|q| {
                (
                    q,
                    CounterState {
                        value: 0,
                        last_digest: Digest::ZERO,
                    },
                )
            })
            .collect();
        CounterSet {
            counters,
            next_fresh_id: count,
        }
    }

    /// Number of counters in the set.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Returns `true` when the set holds no counters.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Current value of counter `q`, if it exists.
    pub fn value(&self, q: u64) -> Option<u64> {
        self.counters.get(&q).map(|c| c.value)
    }

    /// Digest last bound to counter `q`, if it exists.
    pub fn last_digest(&self, q: u64) -> Option<Digest> {
        self.counters.get(&q).map(|c| c.last_digest)
    }

    /// Approximate in-enclave memory footprint in bytes; counters are tiny
    /// (identifier + value + last digest), which is the "Low" memory column
    /// of Figure 1.
    pub fn memory_bytes(&self) -> usize {
        self.counters.len() * (8 + 8 + 32)
    }

    /// trust-bft `Append`: the host proposes `k_new`; it must be strictly
    /// greater than the counter's current value.
    ///
    /// Returns the accepted value (always `k_new`).
    pub fn append(&mut self, q: u64, k_new: u64, digest: Digest) -> Result<u64> {
        let counter = self
            .counters
            .get_mut(&q)
            .ok_or(Error::TrustedSlotEmpty { log: q, slot: 0 })?;
        if k_new <= counter.value {
            return Err(Error::TrustedMonotonicityViolation {
                counter: q,
                current: counter.value,
                requested: k_new,
            });
        }
        counter.value = k_new;
        counter.last_digest = digest;
        Ok(k_new)
    }

    /// FlexiTrust `AppendF`: the component increments the counter internally
    /// and binds the new value to `digest`. Returns the new value.
    pub fn append_f(&mut self, q: u64, digest: Digest) -> Result<u64> {
        let counter = self
            .counters
            .get_mut(&q)
            .ok_or(Error::TrustedSlotEmpty { log: q, slot: 0 })?;
        counter.value += 1;
        counter.last_digest = digest;
        Ok(counter.value)
    }

    /// `Create(k)`: creates a fresh counter (with a never-previously-used
    /// identifier) whose initial value is `k`. Returns the new identifier.
    pub fn create(&mut self, initial: u64) -> u64 {
        let q = self.next_fresh_id;
        self.next_fresh_id += 1;
        self.counters.insert(
            q,
            CounterState {
                value: initial,
                last_digest: Digest::ZERO,
            },
        );
        q
    }

    /// Internal: snapshot of the whole state, used by the rollback attack
    /// model and by checkpointing.
    pub(crate) fn snapshot(&self) -> CounterSet {
        self.clone()
    }

    /// Internal: restore a previously captured snapshot (a rollback).
    pub(crate) fn restore(&mut self, snapshot: CounterSet) {
        *self = snapshot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_requires_strictly_increasing_values() {
        let mut set = CounterSet::with_counters(1);
        assert_eq!(set.append(0, 1, Digest::from_u64_tag(1)).unwrap(), 1);
        assert_eq!(set.append(0, 5, Digest::from_u64_tag(2)).unwrap(), 5);
        // Same value refused.
        assert!(set.append(0, 5, Digest::from_u64_tag(3)).is_err());
        // Lower value refused.
        assert!(set.append(0, 4, Digest::from_u64_tag(3)).is_err());
        assert_eq!(set.value(0), Some(5));
    }

    #[test]
    fn append_on_missing_counter_fails() {
        let mut set = CounterSet::with_counters(1);
        assert!(set.append(3, 1, Digest::ZERO).is_err());
        assert!(set.append_f(3, Digest::ZERO).is_err());
    }

    #[test]
    fn append_f_increments_contiguously() {
        let mut set = CounterSet::with_counters(1);
        for expected in 1..=100u64 {
            assert_eq!(
                set.append_f(0, Digest::from_u64_tag(expected)).unwrap(),
                expected
            );
        }
        assert_eq!(set.value(0), Some(100));
        assert_eq!(set.last_digest(0), Some(Digest::from_u64_tag(100)));
    }

    #[test]
    fn create_returns_fresh_identifiers() {
        let mut set = CounterSet::with_counters(2);
        let a = set.create(10);
        let b = set.create(20);
        assert_ne!(a, b);
        assert!(a >= 2 && b >= 2);
        assert_eq!(set.value(a), Some(10));
        assert_eq!(set.value(b), Some(20));
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn created_counter_continues_monotonic() {
        let mut set = CounterSet::new();
        let q = set.create(7);
        assert!(set.append(q, 7, Digest::ZERO).is_err());
        assert_eq!(set.append(q, 8, Digest::ZERO).unwrap(), 8);
        assert_eq!(set.append_f(q, Digest::ZERO).unwrap(), 9);
    }

    #[test]
    fn memory_footprint_tracks_counter_count() {
        let set = CounterSet::with_counters(5);
        assert_eq!(set.memory_bytes(), 5 * 48);
        assert!(!set.is_empty());
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut set = CounterSet::with_counters(1);
        set.append_f(0, Digest::from_u64_tag(1)).unwrap();
        let snap = set.snapshot();
        set.append_f(0, Digest::from_u64_tag(2)).unwrap();
        assert_eq!(set.value(0), Some(2));
        set.restore(snap);
        assert_eq!(set.value(0), Some(1));
    }
}
