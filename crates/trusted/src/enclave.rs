//! The per-replica trusted component ("enclave").
//!
//! An [`Enclave`] packages the pure counter/log state with attestation
//! signing, access statistics, the hardware latency model and — for the §6
//! attack analysis — an explicit rollback handle. Protocol engines hold a
//! [`SharedEnclave`] and call it exactly where the paper's pseudo-code says
//! the trusted component is accessed; everything else (who pays how much
//! latency for those accesses) is derived from the recorded statistics.

use crate::attestation::{sign_attestation, AttestKind, Attestation, AttestationMode};
use crate::counter::CounterSet;
use crate::hardware::TrustedHardware;
use crate::log::TrustedLog;
use crate::rollback::{RollbackControl, RollbackSnapshot};
use crate::stats::{TcAccessKind, TcStats};
use flexitrust_types::{Digest, ReplicaId, Result};
use parking_lot::Mutex;
use std::sync::Arc;

/// Configuration of one enclave.
#[derive(Debug, Clone)]
pub struct EnclaveConfig {
    /// The replica hosting this enclave.
    pub host: ReplicaId,
    /// Signing mode for attestations (real Ed25519 or counting fingerprints).
    pub mode: AttestationMode,
    /// The hardware class backing the enclave (latency + rollback model).
    pub hardware: TrustedHardware,
    /// Number of monotonic counters to pre-create (identifiers `0..`).
    pub counters: u64,
    /// Number of append-only logs to pre-create (identifiers `0..`).
    pub logs: u64,
}

impl EnclaveConfig {
    /// Counter-only enclave, as used by MinBFT/MinZZ/FlexiTrust: a single
    /// monotonic counter on the paper's default SGX-enclave hardware.
    pub fn counter_only(host: ReplicaId, mode: AttestationMode) -> Self {
        EnclaveConfig {
            host,
            mode,
            hardware: TrustedHardware::default_enclave(),
            counters: 1,
            logs: 0,
        }
    }

    /// Log-based enclave, as used by PBFT-EA: one log per consensus phase
    /// (pre-prepare, prepare, commit) plus one monotonic counter.
    pub fn log_based(host: ReplicaId, mode: AttestationMode) -> Self {
        EnclaveConfig {
            host,
            mode,
            hardware: TrustedHardware::default_enclave(),
            counters: 1,
            logs: 3,
        }
    }

    /// Replaces the hardware model (e.g. for the Figure 8 latency sweep).
    pub fn with_hardware(mut self, hardware: TrustedHardware) -> Self {
        self.hardware = hardware;
        self
    }
}

/// Mutable enclave internals, shared with [`RollbackControl`].
#[derive(Debug)]
pub(crate) struct EnclaveState {
    pub(crate) counters: CounterSet,
    pub(crate) logs: TrustedLog,
}

impl EnclaveState {
    pub(crate) fn snapshot(&self) -> RollbackSnapshot {
        RollbackSnapshot::new(self.counters.snapshot(), self.logs.snapshot())
    }

    pub(crate) fn restore(&mut self, snapshot: &RollbackSnapshot) {
        self.counters.restore(snapshot.counters().clone());
        self.logs.restore(snapshot.logs().clone());
    }
}

/// A trusted component co-located with one replica.
pub struct Enclave {
    host: ReplicaId,
    mode: AttestationMode,
    hardware: TrustedHardware,
    state: Arc<Mutex<EnclaveState>>,
    stats: TcStats,
}

/// Shared handle to an enclave; protocol engines and attack harnesses clone
/// this freely.
pub type SharedEnclave = Arc<Enclave>;

impl Enclave {
    /// Creates an enclave from its configuration.
    pub fn new(config: EnclaveConfig) -> Self {
        Enclave {
            host: config.host,
            mode: config.mode,
            hardware: config.hardware,
            state: Arc::new(Mutex::new(EnclaveState {
                counters: CounterSet::with_counters(config.counters),
                logs: TrustedLog::with_logs(config.logs),
            })),
            stats: TcStats::new(),
        }
    }

    /// Creates a shared enclave from its configuration.
    pub fn shared(config: EnclaveConfig) -> SharedEnclave {
        Arc::new(Enclave::new(config))
    }

    /// The replica hosting this enclave.
    pub fn host(&self) -> ReplicaId {
        self.host
    }

    /// The hardware model backing this enclave.
    pub fn hardware(&self) -> TrustedHardware {
        self.hardware
    }

    /// Latency of one access, in microseconds, per the hardware model.
    pub fn access_latency_us(&self) -> u64 {
        self.hardware.access_latency_us()
    }

    /// Access statistics (shared; cheap to clone).
    pub fn stats(&self) -> &TcStats {
        &self.stats
    }

    /// Approximate in-enclave memory use of counters and logs in bytes.
    pub fn memory_bytes(&self) -> usize {
        let state = self.state.lock();
        state.counters.memory_bytes() + state.logs.memory_bytes()
    }

    /// Current value of counter `q`.
    pub fn counter_value(&self, q: u64) -> Option<u64> {
        self.state.lock().counters.value(q)
    }

    fn attest(&self, counter: u64, value: u64, digest: Digest, kind: AttestKind) -> Attestation {
        let bytes = Attestation::signed_bytes(self.host, counter, value, &digest, kind);
        Attestation {
            host: self.host,
            counter,
            value,
            digest,
            kind,
            signature: sign_attestation(self.host, self.mode, &bytes),
        }
    }

    /// trust-bft `Append(q, k_new, x)` on a monotonic counter: the host
    /// proposes the new value; the enclave enforces monotonicity and returns
    /// `⟨Attest(q, k_new, x)⟩`.
    pub fn append(&self, q: u64, k_new: u64, digest: Digest) -> Result<Attestation> {
        let result = self.state.lock().counters.append(q, k_new, digest);
        match result {
            Ok(value) => {
                self.stats.record(TcAccessKind::CounterAppend);
                Ok(self.attest(q, value, digest, AttestKind::CounterBind))
            }
            Err(e) => {
                self.stats.record_rejected();
                Err(e)
            }
        }
    }

    /// FlexiTrust `AppendF(q, x)`: the enclave increments counter `q`
    /// internally and returns the new value together with its attestation.
    pub fn append_f(&self, q: u64, digest: Digest) -> Result<(u64, Attestation)> {
        let result = self.state.lock().counters.append_f(q, digest);
        match result {
            Ok(value) => {
                self.stats.record(TcAccessKind::CounterAppendF);
                Ok((
                    value,
                    self.attest(q, value, digest, AttestKind::CounterBind),
                ))
            }
            Err(e) => {
                self.stats.record_rejected();
                Err(e)
            }
        }
    }

    /// `Create(k)`: creates a fresh counter with initial value `initial` and
    /// returns its identifier and a creation attestation.
    pub fn create_counter(&self, initial: u64) -> (u64, Attestation) {
        let q = self.state.lock().counters.create(initial);
        self.stats.record(TcAccessKind::CounterCreate);
        (
            q,
            self.attest(q, initial, Digest::ZERO, AttestKind::CounterCreate),
        )
    }

    /// Append to trusted log `q` (PBFT-EA style); `slot = None` appends at
    /// the next slot. Returns an attestation of the stored slot.
    pub fn log_append(&self, q: u64, slot: Option<u64>, digest: Digest) -> Result<Attestation> {
        let result = self.state.lock().logs.append(q, slot, digest);
        match result {
            Ok(k) => {
                self.stats.record(TcAccessKind::LogAppend);
                Ok(self.attest(q, k, digest, AttestKind::LogSlot))
            }
            Err(e) => {
                self.stats.record_rejected();
                Err(e)
            }
        }
    }

    /// `Lookup(q, k)` on a trusted log: returns an attestation of the digest
    /// stored at slot `k`.
    pub fn log_lookup(&self, q: u64, k: u64) -> Result<Attestation> {
        let result = self.state.lock().logs.lookup(q, k);
        match result {
            Ok(digest) => {
                self.stats.record(TcAccessKind::LogLookup);
                Ok(self.attest(q, k, digest, AttestKind::LogSlot))
            }
            Err(e) => {
                self.stats.record_rejected();
                Err(e)
            }
        }
    }

    /// Truncates trusted logs up to (and including) `slot`; called when a
    /// stable checkpoint is reached.
    pub fn truncate_logs(&self, slot: u64) {
        self.state.lock().logs.truncate(slot);
    }

    /// Returns the rollback handle a *malicious host* would have over this
    /// enclave's state (§6). Rolling back only succeeds when the hardware
    /// model is not rollback-protected.
    pub fn rollback_control(self: &Arc<Self>) -> RollbackControl {
        RollbackControl::new(Arc::clone(&self.state), self.hardware.rollback_protected())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attestation::EnclaveRegistry;

    fn enclave(mode: AttestationMode) -> SharedEnclave {
        Enclave::shared(EnclaveConfig::counter_only(ReplicaId(1), mode))
    }

    #[test]
    fn append_f_produces_verifiable_contiguous_attestations() {
        let e = enclave(AttestationMode::Real);
        let registry = EnclaveRegistry::deterministic(4, AttestationMode::Real);
        for expected in 1..=5u64 {
            let (value, att) = e.append_f(0, Digest::from_u64_tag(expected)).unwrap();
            assert_eq!(value, expected);
            assert_eq!(att.value, expected);
            registry.verify(&att).unwrap();
        }
        assert_eq!(e.stats().snapshot().counter_append_fs, 5);
    }

    #[test]
    fn append_enforces_monotonicity_and_counts_rejections() {
        let e = enclave(AttestationMode::Counting);
        e.append(0, 3, Digest::ZERO).unwrap();
        assert!(e.append(0, 2, Digest::ZERO).is_err());
        let snap = e.stats().snapshot();
        assert_eq!(snap.counter_appends, 1);
        assert_eq!(snap.rejected, 1);
    }

    #[test]
    fn create_counter_returns_fresh_ids_with_attestations() {
        let e = enclave(AttestationMode::Real);
        let registry = EnclaveRegistry::deterministic(4, AttestationMode::Real);
        let (q1, att1) = e.create_counter(10);
        let (q2, att2) = e.create_counter(20);
        assert_ne!(q1, q2);
        assert_eq!(att1.kind, AttestKind::CounterCreate);
        registry.verify(&att1).unwrap();
        registry.verify(&att2).unwrap();
        assert_eq!(e.counter_value(q1), Some(10));
    }

    #[test]
    fn log_roundtrip_with_attested_lookup() {
        let e = Enclave::shared(EnclaveConfig::log_based(
            ReplicaId(2),
            AttestationMode::Real,
        ));
        let registry = EnclaveRegistry::deterministic(4, AttestationMode::Real);
        let a1 = e.log_append(0, None, Digest::from_u64_tag(1)).unwrap();
        assert_eq!(a1.value, 1);
        let looked_up = e.log_lookup(0, 1).unwrap();
        assert_eq!(looked_up.digest, Digest::from_u64_tag(1));
        registry.verify(&looked_up).unwrap();
        assert!(e.log_lookup(0, 5).is_err());
        let snap = e.stats().snapshot();
        assert_eq!(snap.log_appends, 1);
        assert_eq!(snap.log_lookups, 1);
        assert_eq!(snap.rejected, 1);
    }

    #[test]
    fn truncation_reduces_memory() {
        let e = Enclave::shared(EnclaveConfig::log_based(
            ReplicaId(0),
            AttestationMode::Counting,
        ));
        for _ in 0..50 {
            e.log_append(0, None, Digest::ZERO).unwrap();
        }
        let before = e.memory_bytes();
        e.truncate_logs(50);
        assert!(e.memory_bytes() < before);
    }

    #[test]
    fn latency_follows_hardware_model() {
        let cfg = EnclaveConfig::counter_only(ReplicaId(0), AttestationMode::Counting)
            .with_hardware(TrustedHardware::Custom {
                access_us: 12_345,
                rollback_protected: true,
            });
        let e = Enclave::shared(cfg);
        assert_eq!(e.access_latency_us(), 12_345);
    }

    #[test]
    fn counter_only_config_has_no_logs() {
        let e = enclave(AttestationMode::Counting);
        assert!(e.log_append(0, None, Digest::ZERO).is_err());
        assert_eq!(e.host(), ReplicaId(1));
    }
}
