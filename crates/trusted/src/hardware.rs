//! Trusted hardware latency and persistence models.
//!
//! Section 6 and Figure 8 of the paper turn on the *practical* properties of
//! trusted hardware: SGX enclave state is fast to access but can be rolled
//! back by a malicious host; SGX persistent counters and TPMs resist rollback
//! but take tens to hundreds of milliseconds per access; emerging designs
//! such as ADAM-CS bring that below ten milliseconds. [`TrustedHardware`]
//! captures an access-latency / rollback-resistance point so that the
//! simulator can sweep it (Figure 8) and the attack scenarios can reason
//! about which configurations are vulnerable (§6).

use std::fmt;

/// A trusted-hardware configuration: how long one access takes and whether
/// the state survives (and resists) a malicious host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrustedHardware {
    /// Monotonic counters kept inside an SGX enclave (the paper's default
    /// experimental setup, §9.1): microsecond-scale access, but state is
    /// *not* rollback-protected.
    SgxEnclaveCounter {
        /// One access in microseconds (signing an attestation inside the
        /// enclave); the paper's setup is on the order of tens of µs.
        access_us: u64,
    },
    /// SGX Platform Services persistent counters: rollback-protected but
    /// 30–187 ms per access and a limited write budget.
    SgxPersistentCounter {
        /// One access in microseconds.
        access_us: u64,
    },
    /// A TPM-backed counter: rollback-protected, 80–200 ms per access.
    Tpm {
        /// One access in microseconds.
        access_us: u64,
    },
    /// An ADAM-CS-style asynchronous monotonic counter service: rollback
    /// protected with access latency below 10 ms.
    AdamCs {
        /// One access in microseconds.
        access_us: u64,
    },
    /// A custom latency point, used by the Figure 8 sweep.
    Custom {
        /// One access in microseconds.
        access_us: u64,
        /// Whether the state resists rollback by the host.
        rollback_protected: bool,
    },
}

impl TrustedHardware {
    /// The paper's default: counters inside the SGX enclave, ~20 µs/access.
    pub fn default_enclave() -> Self {
        TrustedHardware::SgxEnclaveCounter { access_us: 20 }
    }

    /// Typical SGX persistent counter (~60 ms/access, middle of the 30–187 ms
    /// range reported by the paper).
    pub fn typical_persistent_counter() -> Self {
        TrustedHardware::SgxPersistentCounter { access_us: 60_000 }
    }

    /// Typical TPM (~100 ms/access).
    pub fn typical_tpm() -> Self {
        TrustedHardware::Tpm { access_us: 100_000 }
    }

    /// Typical ADAM-CS deployment (~5 ms/access).
    pub fn typical_adam_cs() -> Self {
        TrustedHardware::AdamCs { access_us: 5_000 }
    }

    /// Latency of one access to the trusted component, in microseconds.
    pub fn access_latency_us(&self) -> u64 {
        match *self {
            TrustedHardware::SgxEnclaveCounter { access_us }
            | TrustedHardware::SgxPersistentCounter { access_us }
            | TrustedHardware::Tpm { access_us }
            | TrustedHardware::AdamCs { access_us }
            | TrustedHardware::Custom { access_us, .. } => access_us,
        }
    }

    /// Whether the hardware's state survives a malicious host attempting a
    /// rollback (§6): `false` means a rollback attack is possible.
    pub fn rollback_protected(&self) -> bool {
        match *self {
            TrustedHardware::SgxEnclaveCounter { .. } => false,
            TrustedHardware::SgxPersistentCounter { .. }
            | TrustedHardware::Tpm { .. }
            | TrustedHardware::AdamCs { .. } => true,
            TrustedHardware::Custom {
                rollback_protected, ..
            } => rollback_protected,
        }
    }

    /// Human-readable name of the hardware class.
    pub fn name(&self) -> &'static str {
        match self {
            TrustedHardware::SgxEnclaveCounter { .. } => "SGX enclave counter",
            TrustedHardware::SgxPersistentCounter { .. } => "SGX persistent counter",
            TrustedHardware::Tpm { .. } => "TPM",
            TrustedHardware::AdamCs { .. } => "ADAM-CS",
            TrustedHardware::Custom { .. } => "custom",
        }
    }

    /// The latency points of the Figure 8 sweep (in milliseconds), as listed
    /// in the paper's table: 1.0, 1.5, 2.0, 2.5, 3.0, 10, 30, 100, 200.
    pub fn figure8_sweep_ms() -> Vec<f64> {
        vec![1.0, 1.5, 2.0, 2.5, 3.0, 10.0, 30.0, 100.0, 200.0]
    }
}

impl fmt::Display for TrustedHardware {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} µs/access, rollback-{})",
            self.name(),
            self.access_latency_us(),
            if self.rollback_protected() {
                "protected"
            } else {
                "vulnerable"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enclave_counters_are_fast_but_rollbackable() {
        let hw = TrustedHardware::default_enclave();
        assert!(hw.access_latency_us() < 1_000);
        assert!(!hw.rollback_protected());
    }

    #[test]
    fn persistent_hardware_is_slow_but_protected() {
        for hw in [
            TrustedHardware::typical_persistent_counter(),
            TrustedHardware::typical_tpm(),
        ] {
            assert!(hw.access_latency_us() >= 30_000, "{hw}");
            assert!(hw.rollback_protected(), "{hw}");
        }
    }

    #[test]
    fn adam_cs_is_the_middle_ground() {
        let hw = TrustedHardware::typical_adam_cs();
        assert!(hw.access_latency_us() < 10_000);
        assert!(hw.rollback_protected());
    }

    #[test]
    fn custom_point_controls_both_axes() {
        let hw = TrustedHardware::Custom {
            access_us: 2_500,
            rollback_protected: true,
        };
        assert_eq!(hw.access_latency_us(), 2_500);
        assert!(hw.rollback_protected());
    }

    #[test]
    fn figure8_sweep_matches_paper_rows() {
        let sweep = TrustedHardware::figure8_sweep_ms();
        assert_eq!(sweep.len(), 9);
        assert_eq!(sweep[0], 1.0);
        assert_eq!(*sweep.last().unwrap(), 200.0);
    }

    #[test]
    fn display_mentions_vulnerability() {
        assert!(TrustedHardware::default_enclave()
            .to_string()
            .contains("rollback-vulnerable"));
        assert!(TrustedHardware::typical_tpm()
            .to_string()
            .contains("rollback-protected"));
    }
}
