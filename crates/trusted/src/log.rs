//! Trusted append-only logs (PBFT-EA / HotStuff-M style).
//!
//! A [`TrustedLog`] keeps, per log identifier `q`, a map from slot `k` to the
//! digest stored there. `Append` follows the paper's semantics exactly: with
//! no explicit slot the log advances by one; with an explicit slot greater
//! than the last it jumps forward and the skipped slots become unusable
//! forever. `Lookup` returns the digest so the enclave can attest to it.
//!
//! Unlike counters, logs keep every appended entry until truncated at a
//! checkpoint, which is why Figure 1 lists their memory requirement as
//! "High" (or "order of log size" for the counter + log hybrids).

use flexitrust_types::{Digest, Error, Result};
use std::collections::BTreeMap;

/// One append-only log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct LogState {
    /// Stored entries, keyed by slot.
    slots: BTreeMap<u64, Digest>,
    /// The highest slot ever written (0 = nothing written yet).
    last_slot: u64,
}

/// A set of append-only logs, keyed by log identifier `q`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrustedLog {
    logs: BTreeMap<u64, LogState>,
}

impl TrustedLog {
    /// Creates an empty log set.
    pub fn new() -> Self {
        TrustedLog::default()
    }

    /// Creates a log set with `count` logs, identifiers `0..count`.
    ///
    /// PBFT-EA keeps one log per consensus phase (five in the original
    /// design); the protocols in this repository use one log per phase they
    /// attest.
    pub fn with_logs(count: u64) -> Self {
        TrustedLog {
            logs: (0..count).map(|q| (q, LogState::default())).collect(),
        }
    }

    /// Number of logs in the set.
    pub fn len(&self) -> usize {
        self.logs.len()
    }

    /// Returns `true` when the set holds no logs.
    pub fn is_empty(&self) -> bool {
        self.logs.is_empty()
    }

    /// The highest slot written in log `q` (0 if nothing was written).
    pub fn last_slot(&self, q: u64) -> Option<u64> {
        self.logs.get(&q).map(|l| l.last_slot)
    }

    /// Number of entries currently stored in log `q`.
    pub fn entries(&self, q: u64) -> usize {
        self.logs.get(&q).map(|l| l.slots.len()).unwrap_or(0)
    }

    /// Approximate in-enclave memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.logs
            .values()
            .map(|l| l.slots.len() * (8 + 32) + 16)
            .sum()
    }

    /// `Append(q, k_new, x)`.
    ///
    /// * `k_new = None` — append at `last_slot + 1`.
    /// * `k_new = Some(k)` with `k > last_slot` — append at `k`; the skipped
    ///   slots can never be used.
    /// * `k_new = Some(k)` with `k <= last_slot` — refused (the component
    ///   never re-writes or back-fills a slot).
    ///
    /// Returns the slot at which `digest` was stored.
    pub fn append(&mut self, q: u64, k_new: Option<u64>, digest: Digest) -> Result<u64> {
        let log = self
            .logs
            .get_mut(&q)
            .ok_or(Error::TrustedSlotEmpty { log: q, slot: 0 })?;
        let slot = match k_new {
            None => log.last_slot + 1,
            Some(k) if k > log.last_slot => k,
            Some(k) => {
                return Err(Error::TrustedMonotonicityViolation {
                    counter: q,
                    current: log.last_slot,
                    requested: k,
                })
            }
        };
        log.slots.insert(slot, digest);
        log.last_slot = slot;
        Ok(slot)
    }

    /// `Lookup(q, k)`: returns the digest stored at slot `k` of log `q`.
    pub fn lookup(&self, q: u64, k: u64) -> Result<Digest> {
        self.logs
            .get(&q)
            .and_then(|l| l.slots.get(&k))
            .copied()
            .ok_or(Error::TrustedSlotEmpty { log: q, slot: k })
    }

    /// Truncates every log, dropping entries at slots `<= up_to`; called when
    /// a stable checkpoint is reached.
    pub fn truncate(&mut self, up_to: u64) {
        for log in self.logs.values_mut() {
            log.slots = log.slots.split_off(&(up_to + 1));
        }
    }

    /// Internal: snapshot for the rollback attack model.
    pub(crate) fn snapshot(&self) -> TrustedLog {
        self.clone()
    }

    /// Internal: restore a previously captured snapshot (a rollback).
    pub(crate) fn restore(&mut self, snapshot: TrustedLog) {
        *self = snapshot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implicit_append_advances_by_one() {
        let mut log = TrustedLog::with_logs(1);
        assert_eq!(log.append(0, None, Digest::from_u64_tag(1)).unwrap(), 1);
        assert_eq!(log.append(0, None, Digest::from_u64_tag(2)).unwrap(), 2);
        assert_eq!(log.last_slot(0), Some(2));
        assert_eq!(log.lookup(0, 1).unwrap(), Digest::from_u64_tag(1));
    }

    #[test]
    fn explicit_append_can_jump_forward_only() {
        let mut log = TrustedLog::with_logs(1);
        log.append(0, Some(5), Digest::from_u64_tag(5)).unwrap();
        // Jumped-over slots are unusable.
        assert!(log.append(0, Some(3), Digest::from_u64_tag(3)).is_err());
        assert!(log.append(0, Some(5), Digest::from_u64_tag(6)).is_err());
        assert_eq!(log.append(0, None, Digest::from_u64_tag(6)).unwrap(), 6);
        assert!(log.lookup(0, 4).is_err());
    }

    #[test]
    fn no_slot_is_ever_overwritten() {
        let mut log = TrustedLog::with_logs(1);
        log.append(0, None, Digest::from_u64_tag(1)).unwrap();
        // Every way of addressing slot 1 again must fail.
        assert!(log.append(0, Some(1), Digest::from_u64_tag(99)).is_err());
        assert_eq!(log.lookup(0, 1).unwrap(), Digest::from_u64_tag(1));
    }

    #[test]
    fn lookup_missing_slot_or_log_fails() {
        let log = TrustedLog::with_logs(1);
        assert!(log.lookup(0, 1).is_err());
        assert!(log.lookup(7, 1).is_err());
    }

    #[test]
    fn distinct_logs_are_independent() {
        let mut log = TrustedLog::with_logs(3);
        log.append(0, None, Digest::from_u64_tag(1)).unwrap();
        log.append(1, Some(10), Digest::from_u64_tag(2)).unwrap();
        assert_eq!(log.last_slot(0), Some(1));
        assert_eq!(log.last_slot(1), Some(10));
        assert_eq!(log.last_slot(2), Some(0));
    }

    #[test]
    fn truncate_drops_old_entries_but_keeps_position() {
        let mut log = TrustedLog::with_logs(1);
        for _ in 0..10 {
            log.append(0, None, Digest::from_u64_tag(1)).unwrap();
        }
        assert_eq!(log.entries(0), 10);
        log.truncate(7);
        assert_eq!(log.entries(0), 3);
        assert_eq!(log.last_slot(0), Some(10));
        assert!(log.lookup(0, 7).is_err());
        assert!(log.lookup(0, 8).is_ok());
        // Monotonicity survives truncation.
        assert!(log.append(0, Some(9), Digest::ZERO).is_err());
    }

    #[test]
    fn memory_grows_with_entries_and_shrinks_on_truncate() {
        let mut log = TrustedLog::with_logs(1);
        let empty = log.memory_bytes();
        for _ in 0..100 {
            log.append(0, None, Digest::ZERO).unwrap();
        }
        let full = log.memory_bytes();
        assert!(full > empty);
        log.truncate(100);
        assert!(log.memory_bytes() < full);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut log = TrustedLog::with_logs(1);
        log.append(0, None, Digest::from_u64_tag(1)).unwrap();
        let snap = log.snapshot();
        log.append(0, None, Digest::from_u64_tag(2)).unwrap();
        log.restore(snap);
        assert_eq!(log.last_slot(0), Some(1));
        assert!(log.lookup(0, 2).is_err());
    }
}
