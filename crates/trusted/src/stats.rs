//! Access statistics for trusted components.
//!
//! The paper's central performance argument is about *how often* protocols
//! touch their trusted components: once per message for trust-bft protocols,
//! once per consensus (and only at the primary) for FlexiTrust (G2). These
//! counters make that measurable — the simulator charges hardware latency
//! per recorded access and the tests assert the per-protocol access budgets.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The kinds of trusted-component accesses tracked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TcAccessKind {
    /// trust-bft `Append` on a counter (host supplies the value).
    CounterAppend,
    /// FlexiTrust `AppendF` (component increments internally).
    CounterAppendF,
    /// `Create` of a fresh counter.
    CounterCreate,
    /// Append to a trusted log.
    LogAppend,
    /// Lookup (attested read) from a trusted log.
    LogLookup,
}

/// A snapshot of trusted-component access counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcStatsSnapshot {
    /// Number of `Append` calls.
    pub counter_appends: u64,
    /// Number of `AppendF` calls.
    pub counter_append_fs: u64,
    /// Number of `Create` calls.
    pub counter_creates: u64,
    /// Number of log appends.
    pub log_appends: u64,
    /// Number of log lookups.
    pub log_lookups: u64,
    /// Number of accesses that were *rejected* (monotonicity violations,
    /// missing slots); rejected accesses still cost hardware latency.
    pub rejected: u64,
}

impl TcStatsSnapshot {
    /// Total number of trusted-component accesses of any kind (including
    /// rejected ones, which still pay the hardware access latency).
    pub fn total_accesses(&self) -> u64 {
        self.counter_appends
            + self.counter_append_fs
            + self.counter_creates
            + self.log_appends
            + self.log_lookups
            + self.rejected
    }

    /// Element-wise difference (`self - earlier`), saturating at zero.
    pub fn since(&self, earlier: &TcStatsSnapshot) -> TcStatsSnapshot {
        TcStatsSnapshot {
            counter_appends: self.counter_appends.saturating_sub(earlier.counter_appends),
            counter_append_fs: self
                .counter_append_fs
                .saturating_sub(earlier.counter_append_fs),
            counter_creates: self.counter_creates.saturating_sub(earlier.counter_creates),
            log_appends: self.log_appends.saturating_sub(earlier.log_appends),
            log_lookups: self.log_lookups.saturating_sub(earlier.log_lookups),
            rejected: self.rejected.saturating_sub(earlier.rejected),
        }
    }
}

/// Thread-safe, cheaply cloneable access counters for one trusted component.
#[derive(Clone, Default)]
pub struct TcStats {
    inner: Arc<TcCounters>,
}

#[derive(Default)]
struct TcCounters {
    counter_appends: AtomicU64,
    counter_append_fs: AtomicU64,
    counter_creates: AtomicU64,
    log_appends: AtomicU64,
    log_lookups: AtomicU64,
    rejected: AtomicU64,
    history: Mutex<Vec<TcStatsSnapshot>>,
}

impl TcStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        TcStats::default()
    }

    /// Records a successful access of the given kind.
    pub fn record(&self, kind: TcAccessKind) {
        let counter = match kind {
            TcAccessKind::CounterAppend => &self.inner.counter_appends,
            TcAccessKind::CounterAppendF => &self.inner.counter_append_fs,
            TcAccessKind::CounterCreate => &self.inner.counter_creates,
            TcAccessKind::LogAppend => &self.inner.log_appends,
            TcAccessKind::LogLookup => &self.inner.log_lookups,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a rejected access.
    pub fn record_rejected(&self) {
        self.inner.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Returns the current counts.
    pub fn snapshot(&self) -> TcStatsSnapshot {
        TcStatsSnapshot {
            counter_appends: self.inner.counter_appends.load(Ordering::Relaxed),
            counter_append_fs: self.inner.counter_append_fs.load(Ordering::Relaxed),
            counter_creates: self.inner.counter_creates.load(Ordering::Relaxed),
            log_appends: self.inner.log_appends.load(Ordering::Relaxed),
            log_lookups: self.inner.log_lookups.load(Ordering::Relaxed),
            rejected: self.inner.rejected.load(Ordering::Relaxed),
        }
    }

    /// Appends the current snapshot to the internal history.
    pub fn checkpoint(&self) {
        let snap = self.snapshot();
        self.inner.history.lock().push(snap);
    }

    /// Returns the recorded history.
    pub fn history(&self) -> Vec<TcStatsSnapshot> {
        self.inner.history.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_by_kind() {
        let stats = TcStats::new();
        stats.record(TcAccessKind::CounterAppendF);
        stats.record(TcAccessKind::CounterAppendF);
        stats.record(TcAccessKind::LogAppend);
        stats.record_rejected();
        let snap = stats.snapshot();
        assert_eq!(snap.counter_append_fs, 2);
        assert_eq!(snap.log_appends, 1);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.total_accesses(), 4);
    }

    #[test]
    fn clones_share_counters() {
        let stats = TcStats::new();
        stats.clone().record(TcAccessKind::CounterCreate);
        assert_eq!(stats.snapshot().counter_creates, 1);
    }

    #[test]
    fn since_gives_interval_deltas() {
        let stats = TcStats::new();
        stats.record(TcAccessKind::CounterAppend);
        let a = stats.snapshot();
        stats.record(TcAccessKind::CounterAppend);
        stats.record(TcAccessKind::LogLookup);
        let delta = stats.snapshot().since(&a);
        assert_eq!(delta.counter_appends, 1);
        assert_eq!(delta.log_lookups, 1);
        assert_eq!(delta.counter_creates, 0);
    }

    #[test]
    fn history_checkpoints_accumulate() {
        let stats = TcStats::new();
        stats.checkpoint();
        stats.record(TcAccessKind::LogAppend);
        stats.checkpoint();
        assert_eq!(stats.history().len(), 2);
        assert_eq!(stats.history()[1].log_appends, 1);
    }
}
