//! Common identifiers, transactions, batches, configuration and error types
//! shared by every crate of the FlexiTrust reproduction.
//!
//! This crate is intentionally free of any protocol or I/O logic: it only
//! defines the *data* vocabulary of the system so that the crypto substrate,
//! the trusted-component substrate, the protocol engines, the simulator and
//! the threaded runtime can all speak the same language.
//!
//! The terminology follows the paper ("Dissecting BFT Consensus: In Trusted
//! Components we Trust!", EuroSys 2023): replicas are identified by
//! [`ReplicaId`], clients by [`ClientId`], consensus slots by [`SeqNum`],
//! leadership epochs by [`View`], and client operations are [`Transaction`]s
//! grouped into [`Batch`]es.

pub mod config;
pub mod digest;
pub mod error;
pub mod ids;
pub mod region;
pub mod snapshot;
pub mod transaction;

pub use config::{ProtocolId, QuorumRule, ReplicationFactor, SystemConfig};
pub use digest::Digest;
pub use error::{Error, Result};
pub use ids::{ClientId, NodeId, ReplicaId, RequestId, SeqNum, View};
pub use region::{BandwidthConfig, Region, RegionMap, WanMatrix};
pub use snapshot::StateSnapshot;
pub use transaction::{
    batch_payload_allocations, value_payload_allocations, Batch, KvOp, KvResult, Transaction,
    TxnOutcome, ValueBytes,
};
