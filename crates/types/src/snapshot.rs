//! Serializable snapshot of the executed key-value state.
//!
//! A [`StateSnapshot`] is the payload of a checkpoint state transfer: the
//! full record set at a stable checkpoint boundary plus the two counters
//! (`applied_mutations`, `fingerprint`) that make the store's incremental
//! state digest reproducible on the installing side. It lives in the types
//! crate so the wire codec can frame it without depending on the execution
//! layer.

use crate::ValueBytes;

/// The executed state at one checkpoint boundary.
///
/// Values share their buffers with the originating store ([`ValueBytes`] is
/// reference-counted), so snapshotting an in-memory store copies handles,
/// not record bytes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StateSnapshot {
    /// All records at the boundary, in ascending key order.
    pub entries: Vec<(u64, ValueBytes)>,
    /// Mutations applied up to (and including) the boundary.
    pub applied_mutations: u64,
    /// The store's commutative fingerprint at the boundary.
    pub fingerprint: u64,
}

impl StateSnapshot {
    /// Modeled wire size: both counters, a record count, and per record a
    /// key, a value-length prefix and the value bytes.
    pub fn wire_size(&self) -> usize {
        8 + 8
            + 4
            + self
                .entries
                .iter()
                .map(|(_, value)| 8 + 4 + value.len())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_counts_counters_and_records() {
        let snapshot = StateSnapshot {
            entries: vec![(1, vec![0u8; 10].into()), (2, vec![0u8; 3].into())],
            applied_mutations: 2,
            fingerprint: 99,
        };
        assert_eq!(snapshot.wire_size(), 8 + 8 + 4 + (8 + 4 + 10) + (8 + 4 + 3));
    }

    #[test]
    fn empty_snapshot_is_counters_plus_count() {
        assert_eq!(StateSnapshot::default().wire_size(), 20);
    }
}
