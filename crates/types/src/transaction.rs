//! Client transactions, key-value operations and request batches.
//!
//! The paper evaluates the protocols on a YCSB-style key-value workload
//! (600 k records, read/update operations). [`KvOp`] is the operation
//! vocabulary, [`Transaction`] is one signed client request, and [`Batch`]
//! is the unit of consensus (ResilientDB-style client/server batching).

use crate::digest::Digest;
use crate::ids::{ClientId, RequestId};
use std::fmt;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Counts every [`Batch`] payload allocation (one per `BatchInner`). A
/// batch *clone* is a reference-count bump and does not count; only
/// constructing a batch from owned transactions does. Zero-copy regression
/// tests read this: an n-replica broadcast must allocate the payload once,
/// not once per recipient.
static BATCH_PAYLOAD_ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Total [`Batch`] payload allocations since process start (monotone,
/// process-wide). Tests diff two readings around a workload to pin the
/// zero-copy invariant; concurrent tests only ever make the diff larger,
/// so upper-bound assertions stay sound.
pub fn batch_payload_allocations() -> u64 {
    BATCH_PAYLOAD_ALLOCATIONS.load(Ordering::Relaxed)
}

/// Counts every [`ValueBytes`] payload allocation (one per distinct value
/// buffer). A value *clone* is a reference-count bump and does not count;
/// only materialising a buffer from owned or borrowed bytes does.
/// Zero-copy regression tests read this: a committed update must cost one
/// value allocation at the client that generated it — execution at every
/// replica, sharded or serial, shares that allocation by reference.
static VALUE_PAYLOAD_ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Total [`ValueBytes`] payload allocations since process start (monotone,
/// process-wide). Tests diff two readings around a workload to pin the
/// zero-copy invariant; concurrent tests only ever make the diff larger,
/// so upper-bound assertions stay sound.
pub fn value_payload_allocations() -> u64 {
    VALUE_PAYLOAD_ALLOCATIONS.load(Ordering::Relaxed)
}

/// An immutable value payload shared by reference: the bytes of one record
/// value, allocated once (counted by [`value_payload_allocations`]) and
/// reference-counted everywhere after — through [`KvOp`] write payloads,
/// the store's records, and [`KvResult`] reads. Cloning is a refcount
/// bump; the backing buffer is never copied.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueBytes(Arc<[u8]>);

impl ValueBytes {
    /// Length of the value in bytes.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` when this handle shares its backing buffer with
    /// `other` (the zero-copy invariant the regression tests pin).
    pub fn shares_buffer(&self, other: &ValueBytes) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Deref for ValueBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for ValueBytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for ValueBytes {
    fn from(bytes: Vec<u8>) -> Self {
        VALUE_PAYLOAD_ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ValueBytes(bytes.into())
    }
}

impl From<&[u8]> for ValueBytes {
    fn from(bytes: &[u8]) -> Self {
        VALUE_PAYLOAD_ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ValueBytes(bytes.into())
    }
}

impl<const N: usize> From<[u8; N]> for ValueBytes {
    fn from(bytes: [u8; N]) -> Self {
        VALUE_PAYLOAD_ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ValueBytes(Arc::from(&bytes[..]))
    }
}

impl fmt::Debug for ValueBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Record values are bulk payload; print length, not bytes.
        write!(f, "ValueBytes(len={})", self.0.len())
    }
}

/// A single key-value store operation, mirroring the YCSB core workloads.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum KvOp {
    /// Read the value stored under `key`.
    Read {
        /// Record key.
        key: u64,
    },
    /// Overwrite the value stored under `key`.
    Update {
        /// Record key.
        key: u64,
        /// New record value (shared by reference; see [`ValueBytes`]).
        value: ValueBytes,
    },
    /// Insert a new record.
    Insert {
        /// Record key.
        key: u64,
        /// Record value (shared by reference; see [`ValueBytes`]).
        value: ValueBytes,
    },
    /// Read-modify-write: read the record, then overwrite it.
    ReadModifyWrite {
        /// Record key.
        key: u64,
        /// New record value (shared by reference; see [`ValueBytes`]).
        value: ValueBytes,
    },
    /// Scan `count` records starting at `start_key`.
    Scan {
        /// First key of the scan.
        start_key: u64,
        /// Number of records to return.
        count: u32,
    },
    /// A no-op operation; used by view changes to fill sequence-number gaps.
    Noop,
}

impl KvOp {
    /// Returns `true` when the operation does not modify state.
    pub fn is_read_only(&self) -> bool {
        matches!(self, KvOp::Read { .. } | KvOp::Scan { .. } | KvOp::Noop)
    }

    /// Exact wire size of the operation in bytes, equal to the canonical
    /// codec's encoding (`flexitrust-wire`): a one-byte kind tag, the key,
    /// and — for writes — a `u32` length prefix plus the value bytes.
    pub fn wire_size(&self) -> usize {
        match self {
            KvOp::Read { .. } => 1 + 8,
            KvOp::Update { value, .. } | KvOp::Insert { value, .. } => 1 + 8 + 4 + value.len(),
            KvOp::ReadModifyWrite { value, .. } => 1 + 8 + 4 + value.len(),
            KvOp::Scan { .. } => 1 + 8 + 4,
            KvOp::Noop => 1,
        }
    }

    /// Returns the primary key touched by the operation, if any.
    pub fn key(&self) -> Option<u64> {
        match self {
            KvOp::Read { key }
            | KvOp::Update { key, .. }
            | KvOp::Insert { key, .. }
            | KvOp::ReadModifyWrite { key, .. } => Some(*key),
            KvOp::Scan { start_key, .. } => Some(*start_key),
            KvOp::Noop => None,
        }
    }
}

/// The result of executing a [`KvOp`] against the state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvResult {
    /// The value read (a shared handle onto the store's record buffer —
    /// reading never copies value bytes), or `None` if the key did not
    /// exist.
    Value(Option<ValueBytes>),
    /// The write was applied.
    Written,
    /// The records returned by a scan (shared handles, no copies).
    Range(Vec<(u64, ValueBytes)>),
    /// No-op acknowledged.
    Noop,
}

/// One client request: a key-value operation tagged with the issuing client
/// and a per-client monotonically increasing request id.
///
/// The client-side signature is modelled by the crypto substrate; engines
/// treat requests whose envelope passed verification as well-formed.
///
/// The identity fields are immutable after construction — private behind
/// accessors, so the memoized canonical encoding (computed on first use,
/// shared by clones) can never go stale. Build a new transaction instead
/// of mutating one.
#[derive(Debug, Clone)]
pub struct Transaction {
    /// Issuing client.
    client: ClientId,
    /// Per-client request id (used for reply matching and deduplication).
    request: RequestId,
    /// The operation to execute.
    op: KvOp,
    /// Memoized canonical encoding; filled lazily (a decoded transaction
    /// that is never digested never pays for it) and shared across clones
    /// via the `Arc`.
    canonical: OnceLock<Arc<[u8]>>,
}

impl PartialEq for Transaction {
    fn eq(&self, other: &Self) -> bool {
        // The memo is a pure function of the identity fields: compare only
        // those.
        self.client == other.client && self.request == other.request && self.op == other.op
    }
}

impl Eq for Transaction {}

impl Transaction {
    /// Creates a new transaction.
    pub fn new(client: ClientId, request: RequestId, op: KvOp) -> Self {
        Transaction {
            client,
            request,
            op,
            canonical: OnceLock::new(),
        }
    }

    /// Issuing client.
    pub fn client(&self) -> ClientId {
        self.client
    }

    /// Per-client request id (used for reply matching and deduplication).
    pub fn request(&self) -> RequestId {
        self.request
    }

    /// The operation to execute.
    pub fn op(&self) -> &KvOp {
        &self.op
    }

    /// Consumes the transaction, returning its operation (used when a
    /// template transaction's payload is re-tagged for a fresh request).
    pub fn into_op(self) -> KvOp {
        self.op
    }

    /// Creates a no-op transaction (used by view change gap filling).
    pub fn noop() -> Self {
        Transaction::new(ClientId(u64::MAX), RequestId(0), KvOp::Noop)
    }

    /// Returns `true` when this is a no-op filler transaction.
    pub fn is_noop(&self) -> bool {
        matches!(self.op, KvOp::Noop) && self.client == ClientId(u64::MAX)
    }

    /// Exact wire size in bytes of this transaction, equal to the canonical
    /// codec's encoding: client id + request id + op payload + the 64-byte
    /// client-signature slot (Ed25519).
    pub fn wire_size(&self) -> usize {
        8 + 8 + self.op.wire_size() + 64
    }

    /// Stable byte encoding used as input to digests and signatures.
    ///
    /// Computed once per payload and memoized: repeated digest/signature
    /// calls (and every clone sharing the memo) return the same buffer
    /// without re-walking the operation.
    pub fn canonical_bytes(&self) -> &[u8] {
        self.canonical.get_or_init(|| {
            let mut out = Vec::with_capacity(self.wire_size());
            out.extend_from_slice(&self.client.0.to_le_bytes());
            out.extend_from_slice(&self.request.0.to_le_bytes());
            match &self.op {
                KvOp::Read { key } => {
                    out.push(0);
                    out.extend_from_slice(&key.to_le_bytes());
                }
                KvOp::Update { key, value } => {
                    out.push(1);
                    out.extend_from_slice(&key.to_le_bytes());
                    out.extend_from_slice(value);
                }
                KvOp::Insert { key, value } => {
                    out.push(2);
                    out.extend_from_slice(&key.to_le_bytes());
                    out.extend_from_slice(value);
                }
                KvOp::ReadModifyWrite { key, value } => {
                    out.push(3);
                    out.extend_from_slice(&key.to_le_bytes());
                    out.extend_from_slice(value);
                }
                KvOp::Scan { start_key, count } => {
                    out.push(4);
                    out.extend_from_slice(&start_key.to_le_bytes());
                    out.extend_from_slice(&count.to_le_bytes());
                }
                KvOp::Noop => out.push(5),
            }
            out.into()
        })
    }
}

/// Outcome of a transaction as reported back to the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnOutcome {
    /// The client that issued the transaction.
    pub client: ClientId,
    /// The request id the client attached.
    pub request: RequestId,
    /// The execution result.
    pub result: KvResult,
}

/// The payload of a [`Batch`], allocated exactly once per distinct batch
/// and shared by reference everywhere after.
#[derive(Debug)]
struct BatchInner {
    /// The transactions in proposal order.
    txns: Vec<Transaction>,
    /// Digest of the canonical encoding of all transactions (Δ).
    digest: Digest,
    /// Exact wire size of the batch's canonical-codec encoding, computed
    /// once at construction so `wire_size()` is O(1) however often the
    /// bandwidth model asks.
    wire_size: usize,
    /// Memoized concatenated canonical bytes (the batch-digest input);
    /// filled on first use, shared by every clone.
    canonical: OnceLock<Vec<u8>>,
}

/// A batch of transactions: the unit over which consensus is run.
///
/// ResilientDB batches client requests both at the client library and at the
/// primary; the protocols in this repository order whole batches, exactly as
/// the evaluation section of the paper does (the "batch size" knob of
/// Figure 6(iv)/(v)).
///
/// A `Batch` is a shared handle: the transactions live behind an `Arc`, so
/// cloning — a broadcast fanning one proposal out to n replicas, an engine
/// parking an accepted proposal, the execution queue holding it — is a
/// reference-count bump, never a copy of the payload bytes. The wire size
/// is computed once at construction and the canonical digest input is
/// memoized, so both are O(1) on the hot path.
#[derive(Debug, Clone)]
pub struct Batch {
    inner: Arc<BatchInner>,
}

impl PartialEq for Batch {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
            || (self.inner.digest == other.inner.digest && self.inner.txns == other.inner.txns)
    }
}

impl Eq for Batch {}

impl Batch {
    /// Builds a batch from transactions and a pre-computed digest. This is
    /// the single place a batch payload is allocated.
    ///
    /// The digest is computed by the crypto substrate; this constructor only
    /// packages the two together.
    pub fn new(txns: Vec<Transaction>, digest: Digest) -> Self {
        BATCH_PAYLOAD_ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        let wire_size = 32 + 4 + txns.iter().map(Transaction::wire_size).sum::<usize>();
        Batch {
            inner: Arc::new(BatchInner {
                txns,
                digest,
                wire_size,
                canonical: OnceLock::new(),
            }),
        }
    }

    /// Builds an empty no-op batch for the given tag (used to fill sequence
    /// number gaps during view changes).
    pub fn noop(tag: u64) -> Self {
        Batch::new(vec![Transaction::noop()], Digest::from_u64_tag(tag))
    }

    /// The transactions in proposal order.
    pub fn txns(&self) -> &[Transaction] {
        &self.inner.txns
    }

    /// Digest of the canonical encoding of all transactions (Δ in the
    /// paper).
    pub fn digest(&self) -> Digest {
        self.inner.digest
    }

    /// Returns `true` when this batch shares its payload allocation with
    /// `other` (the zero-copy invariant the regression tests pin).
    pub fn shares_payload(&self, other: &Batch) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Returns `true` when the batch consists solely of no-op transactions.
    pub fn is_noop(&self) -> bool {
        self.inner.txns.iter().all(Transaction::is_noop)
    }

    /// Number of transactions in the batch.
    pub fn len(&self) -> usize {
        self.inner.txns.len()
    }

    /// Returns `true` when the batch holds no transactions.
    pub fn is_empty(&self) -> bool {
        self.inner.txns.is_empty()
    }

    /// Exact wire size of the batch in bytes, equal to the canonical
    /// codec's encoding: the batch digest, a `u32` transaction count, and
    /// every member transaction. Memoized at construction — O(1).
    pub fn wire_size(&self) -> usize {
        self.inner.wire_size
    }

    /// Concatenated canonical bytes of all member transactions; the input to
    /// the batch digest. Computed once per payload and memoized.
    pub fn canonical_bytes(&self) -> &[u8] {
        self.inner.canonical.get_or_init(|| {
            let mut out = Vec::new();
            for t in &self.inner.txns {
                out.extend_from_slice(t.canonical_bytes());
            }
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(c: u64, r: u64, key: u64) -> Transaction {
        Transaction::new(ClientId(c), RequestId(r), KvOp::Read { key })
    }

    #[test]
    fn read_ops_are_read_only_and_writes_are_not() {
        assert!(KvOp::Read { key: 1 }.is_read_only());
        assert!(KvOp::Scan {
            start_key: 1,
            count: 5
        }
        .is_read_only());
        assert!(KvOp::Noop.is_read_only());
        assert!(!KvOp::Update {
            key: 1,
            value: vec![1].into()
        }
        .is_read_only());
        assert!(!KvOp::Insert {
            key: 1,
            value: vec![1].into()
        }
        .is_read_only());
    }

    #[test]
    fn canonical_bytes_distinguish_transactions() {
        let a = txn(1, 1, 10);
        let b = txn(1, 2, 10);
        let c = txn(2, 1, 10);
        assert_ne!(a.canonical_bytes(), b.canonical_bytes());
        assert_ne!(a.canonical_bytes(), c.canonical_bytes());
        let again = txn(1, 1, 10);
        assert_eq!(a.canonical_bytes(), again.canonical_bytes());
    }

    #[test]
    fn canonical_bytes_distinguish_op_kinds() {
        let read = Transaction::new(ClientId(1), RequestId(1), KvOp::Read { key: 5 });
        let update = Transaction::new(
            ClientId(1),
            RequestId(1),
            KvOp::Update {
                key: 5,
                value: vec![].into(),
            },
        );
        assert_ne!(read.canonical_bytes(), update.canonical_bytes());
    }

    #[test]
    fn noop_transaction_and_batch_are_flagged() {
        assert!(Transaction::noop().is_noop());
        assert!(!txn(1, 1, 1).is_noop());
        assert!(Batch::noop(7).is_noop());
        let real = Batch::new(vec![txn(1, 1, 1)], Digest::from_u64_tag(1));
        assert!(!real.is_noop());
    }

    #[test]
    fn batch_sizes_accumulate() {
        let b = Batch::new(vec![txn(1, 1, 1), txn(1, 2, 2)], Digest::from_u64_tag(9));
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        assert!(b.wire_size() > 2 * 80);
        let single = txn(1, 1, 1);
        assert_eq!(
            b.canonical_bytes().len(),
            single.canonical_bytes().len() * 2
        );
    }

    #[test]
    fn wire_size_grows_with_value_length() {
        let small = KvOp::Update {
            key: 1,
            value: vec![0; 10].into(),
        };
        let big = KvOp::Update {
            key: 1,
            value: vec![0; 1000].into(),
        };
        assert!(big.wire_size() > small.wire_size());
    }

    #[test]
    fn op_key_extraction() {
        assert_eq!(KvOp::Read { key: 3 }.key(), Some(3));
        assert_eq!(KvOp::Noop.key(), None);
        assert_eq!(
            KvOp::Scan {
                start_key: 8,
                count: 2
            }
            .key(),
            Some(8)
        );
    }

    #[test]
    fn canonical_bytes_are_stable_and_size_accounted() {
        let b = Batch::new(vec![txn(3, 4, 5)], Digest::from_u64_tag(2));
        let again = Batch::new(vec![txn(3, 4, 5)], Digest::from_u64_tag(2));
        assert_eq!(b, again);
        assert_eq!(b.canonical_bytes(), again.canonical_bytes());
        // The wire size upper-bounds the canonical encoding (it additionally
        // accounts for the batch digest and per-transaction signatures).
        assert!(b.wire_size() > b.canonical_bytes().len());
    }
}
