//! Geographic regions and wide-area latency matrices.
//!
//! The paper's WAN experiment (Figure 6(vi)/(vii)) distributes replicas over
//! six Oracle Cloud regions: San Jose, Ashburn, Sydney, São Paulo, Montreal
//! and Marseille, assigned round-robin in that order. [`WanMatrix`] captures
//! representative one-way latencies between those regions; [`RegionMap`]
//! assigns replicas to regions the same way the paper does.

use crate::ids::ReplicaId;
use std::fmt;

/// The six deployment regions used in the paper's WAN experiment, in the
/// order the paper adds them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Oracle Cloud us-sanjose-1.
    SanJose,
    /// Oracle Cloud us-ashburn-1.
    Ashburn,
    /// Oracle Cloud ap-sydney-1.
    Sydney,
    /// Oracle Cloud sa-saopaulo-1.
    SaoPaulo,
    /// Oracle Cloud ca-montreal-1.
    Montreal,
    /// Oracle Cloud eu-marseille-1.
    Marseille,
}

impl Region {
    /// All regions, in the order the paper enables them (1 region → 6).
    pub const ALL: [Region; 6] = [
        Region::SanJose,
        Region::Ashburn,
        Region::Sydney,
        Region::SaoPaulo,
        Region::Montreal,
        Region::Marseille,
    ];

    /// Index of this region in [`Region::ALL`].
    pub fn index(self) -> usize {
        Region::ALL
            .iter()
            .position(|r| *r == self)
            .expect("region is a member of ALL")
    }

    /// Returns `true` for the North-American regions; the paper observes that
    /// quorums are satisfied by the NA replicas alone, which is why WAN
    /// throughput stays roughly flat.
    pub fn is_north_america(self) -> bool {
        matches!(self, Region::SanJose | Region::Ashburn | Region::Montreal)
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Region::SanJose => "San Jose",
            Region::Ashburn => "Ashburn",
            Region::Sydney => "Sydney",
            Region::SaoPaulo => "Sao Paulo",
            Region::Montreal => "Montreal",
            Region::Marseille => "Marseille",
        };
        f.write_str(name)
    }
}

/// One-way latencies (in microseconds) between deployment regions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WanMatrix {
    /// `latency_us[a][b]` is the one-way latency from region `a` to `b`,
    /// indexed by [`Region::index`].
    latency_us: [[u64; 6]; 6],
}

impl WanMatrix {
    /// Representative one-way latencies between the six Oracle Cloud regions,
    /// derived from public inter-region RTT measurements (half the RTT).
    ///
    /// Values are in microseconds.
    pub fn oracle_cloud() -> Self {
        // Rows/columns: SanJose, Ashburn, Sydney, SaoPaulo, Montreal, Marseille.
        let ms = |v: f64| (v * 1000.0) as u64;
        let latency_us = [
            // San Jose
            [ms(0.25), ms(31.0), ms(74.0), ms(97.0), ms(37.0), ms(74.0)],
            // Ashburn
            [ms(31.0), ms(0.25), ms(102.0), ms(59.0), ms(8.0), ms(41.0)],
            // Sydney
            [
                ms(74.0),
                ms(102.0),
                ms(0.25),
                ms(158.0),
                ms(104.0),
                ms(140.0),
            ],
            // Sao Paulo
            [ms(97.0), ms(59.0), ms(158.0), ms(0.25), ms(65.0), ms(101.0)],
            // Montreal
            [ms(37.0), ms(8.0), ms(104.0), ms(65.0), ms(0.25), ms(45.0)],
            // Marseille
            [ms(74.0), ms(41.0), ms(140.0), ms(101.0), ms(45.0), ms(0.25)],
        ];
        WanMatrix { latency_us }
    }

    /// A uniform single-datacenter matrix with the given one-way latency.
    pub fn uniform(latency_us: u64) -> Self {
        WanMatrix {
            latency_us: [[latency_us; 6]; 6],
        }
    }

    /// One-way latency in microseconds from `a` to `b`.
    pub fn latency_us(&self, a: Region, b: Region) -> u64 {
        self.latency_us[a.index()][b.index()]
    }
}

/// Per-link bandwidth configuration, in megabits per second.
///
/// The simulator's delivery time for a message is `latency + size /
/// bandwidth`; a link class set to `None` is treated as infinitely fast
/// (pure-latency model, the seed behaviour). Splitting local and wide-area
/// links mirrors real deployments, where intra-datacenter links are one to
/// two orders of magnitude faster than inter-region ones — the regime the
/// paper's Figure 6(vi) WAN experiment probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BandwidthConfig {
    /// Bandwidth of intra-region (same datacenter) replica links.
    pub local_mbps: Option<u64>,
    /// Bandwidth of inter-region (wide-area) replica links.
    pub wan_mbps: Option<u64>,
    /// Bandwidth of client↔replica links: charged on request uploads
    /// (client → primary arrival) and on reply downloads (replica → client).
    pub client_mbps: Option<u64>,
    /// Receive-side (ingest) bandwidth of a replica NIC's per-link-class
    /// ingress lanes. `None` (the default) means receivers ingest for free
    /// — the sender-side-only model. When set, every delivery to a replica
    /// additionally serialises on the receiver's ingress lane of its link
    /// class for its wire time, so a leader collecting n − 1 simultaneous
    /// same-class votes pays for them one after another (vote implosion).
    /// Like the egress side, lanes of different classes on one NIC are
    /// independent (same-region and cross-region ingest do not share a
    /// rate yet). Replies to the aggregate client pool pay no ingress: the
    /// pool stands for many independent client NICs, not one ingest pipe.
    pub ingress_mbps: Option<u64>,
    /// MTU-style transfer chunking. `None` (the default) reserves a link
    /// atomically for a transfer's whole wire time — a megabyte batch holds
    /// its lane until the last byte, head-of-line blocking every small
    /// control message queued behind it. `Some(bytes)` splits transfers
    /// into chunks reserved independently, so later broadcast copies and
    /// small votes interleave with a large batch; delivery still completes
    /// when the final chunk lands (cut-through: latency is paid once) and
    /// the chunk wire times sum exactly to the atomic transfer time.
    /// Chunking applies to egress and (when `ingress_mbps` is set) ingress
    /// lanes alike, so an elephant neither holds a sender's wire nor a
    /// receiver's ingest lane against small control messages.
    pub chunk_bytes: Option<usize>,
}

impl BandwidthConfig {
    /// The pure-latency model: every link is infinitely fast.
    pub fn unlimited() -> Self {
        BandwidthConfig::default()
    }

    /// The same bandwidth on every link class.
    ///
    /// Panics on 0 Mbps: a zero-bandwidth link never delivers anything, so a
    /// sweep reaching 0 would otherwise silently report unlimited-bandwidth
    /// numbers (`transmit_time_ns` treats a missing constraint as free).
    pub fn uniform(mbps: u64) -> Self {
        assert!(
            mbps > 0,
            "bandwidth must be positive (0 Mbps never delivers)"
        );
        BandwidthConfig {
            local_mbps: Some(mbps),
            wan_mbps: Some(mbps),
            client_mbps: Some(mbps),
            ..BandwidthConfig::default()
        }
    }

    /// Fast local links, constrained wide-area links — the shape of the
    /// paper's multi-region deployments.
    ///
    /// Panics on 0 Mbps, like [`BandwidthConfig::uniform`].
    pub fn wan_constrained(wan_mbps: u64) -> Self {
        assert!(
            wan_mbps > 0,
            "bandwidth must be positive (0 Mbps never delivers)"
        );
        BandwidthConfig {
            local_mbps: Some(10_000),
            wan_mbps: Some(wan_mbps),
            client_mbps: None,
            ..BandwidthConfig::default()
        }
    }

    /// Sets the MTU-style chunk size transfers are split into on the link
    /// queues. Panics on 0 bytes: a zero-byte chunk never makes progress.
    pub fn with_chunk_bytes(mut self, chunk_bytes: usize) -> Self {
        assert!(chunk_bytes > 0, "chunk size must be positive");
        self.chunk_bytes = Some(chunk_bytes);
        self
    }

    /// Sets the receive-side (ingest) bandwidth of every NIC.
    /// Panics on 0 Mbps, like [`BandwidthConfig::uniform`].
    pub fn with_ingress_mbps(mut self, mbps: u64) -> Self {
        assert!(
            mbps > 0,
            "bandwidth must be positive (0 Mbps never delivers)"
        );
        self.ingress_mbps = Some(mbps);
        self
    }

    /// Nanoseconds needed to push `bytes` through a link of `mbps` megabits
    /// per second. `None` means an infinitely fast link. `Some(0)` — which
    /// the preset constructors reject — saturates to an unusably slow link
    /// (`u64::MAX` ns): a zero-bandwidth link never delivers, and treating it
    /// as *infinitely fast* (as it once was) would make a sweep that reaches
    /// 0 silently report unlimited-bandwidth numbers. Callers adding the
    /// result to a clock must use saturating arithmetic.
    ///
    /// 1 Mbps moves one bit per microsecond, so the transmission time in
    /// nanoseconds is `bits * 1000 / mbps`, rounded **up**: a transfer holds
    /// the link for every partial nanosecond it needs, so small messages on
    /// fast links are never free.
    pub fn transmit_time_ns(mbps: Option<u64>, bytes: usize) -> u64 {
        match mbps {
            None => 0,
            Some(0) => u64::MAX,
            Some(mbps) => (bytes as u64).saturating_mul(8_000).div_ceil(mbps),
        }
    }
}

/// Assignment of replicas to regions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionMap {
    regions: Vec<Region>,
    assignment: Vec<Region>,
}

impl RegionMap {
    /// Places all `n` replicas in a single region (LAN deployment).
    pub fn single_region(n: usize) -> Self {
        RegionMap {
            regions: vec![Region::SanJose],
            assignment: vec![Region::SanJose; n],
        }
    }

    /// Distributes `n` replicas round-robin over the first `region_count`
    /// regions in paper order, exactly as §9.7 does.
    pub fn round_robin(n: usize, region_count: usize) -> Self {
        let count = region_count.clamp(1, Region::ALL.len());
        // lint:allow(Z01): Region is a small Copy config struct from a
        // static table; this is setup-time plumbing, not payload bytes.
        let regions: Vec<Region> = Region::ALL[..count].to_vec();
        let assignment = (0..n).map(|i| regions[i % count]).collect();
        RegionMap {
            regions,
            assignment,
        }
    }

    /// Region hosting the given replica.
    pub fn region_of(&self, replica: ReplicaId) -> Region {
        self.assignment
            .get(replica.as_usize())
            .copied()
            .unwrap_or(Region::SanJose)
    }

    /// The distinct regions in use.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Number of replicas assigned to `region`.
    pub fn count_in(&self, region: Region) -> usize {
        self.assignment.iter().filter(|r| **r == region).count()
    }

    /// Total number of replicas covered by the map.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// Returns `true` when the map covers no replicas.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_indices_are_consistent() {
        for (i, r) in Region::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn north_america_classification() {
        assert!(Region::SanJose.is_north_america());
        assert!(Region::Ashburn.is_north_america());
        assert!(Region::Montreal.is_north_america());
        assert!(!Region::Sydney.is_north_america());
        assert!(!Region::SaoPaulo.is_north_america());
        assert!(!Region::Marseille.is_north_america());
    }

    #[test]
    fn wan_matrix_is_symmetric_and_local_is_fast() {
        let m = WanMatrix::oracle_cloud();
        for a in Region::ALL {
            for b in Region::ALL {
                assert_eq!(m.latency_us(a, b), m.latency_us(b, a));
            }
            assert!(m.latency_us(a, a) < 1000);
        }
        // Sydney <-> Sao Paulo should be the slowest pair.
        assert!(
            m.latency_us(Region::Sydney, Region::SaoPaulo)
                > m.latency_us(Region::SanJose, Region::Ashburn)
        );
    }

    #[test]
    fn uniform_matrix_is_flat() {
        let m = WanMatrix::uniform(150);
        for a in Region::ALL {
            for b in Region::ALL {
                assert_eq!(m.latency_us(a, b), 150);
            }
        }
    }

    #[test]
    fn round_robin_assignment_matches_paper_layout() {
        // 61 replicas over 6 regions => regions get ceil/floor(61/6) replicas.
        let map = RegionMap::round_robin(61, 6);
        assert_eq!(map.len(), 61);
        let total: usize = Region::ALL.iter().map(|r| map.count_in(*r)).sum();
        assert_eq!(total, 61);
        assert_eq!(map.count_in(Region::SanJose), 11);
        assert_eq!(map.count_in(Region::Marseille), 10);
        assert_eq!(map.region_of(ReplicaId(0)), Region::SanJose);
        assert_eq!(map.region_of(ReplicaId(1)), Region::Ashburn);
        assert_eq!(map.region_of(ReplicaId(6)), Region::SanJose);
    }

    #[test]
    fn single_region_puts_everyone_in_san_jose() {
        let map = RegionMap::single_region(5);
        assert_eq!(map.regions(), &[Region::SanJose]);
        assert_eq!(map.count_in(Region::SanJose), 5);
        assert!(!map.is_empty());
    }

    #[test]
    fn transmit_time_scales_with_size_and_bandwidth() {
        // 1 Gbps moves 1 bit/ns: 1000 bytes = 8000 bits = 8 µs.
        assert_eq!(BandwidthConfig::transmit_time_ns(Some(1_000), 1_000), 8_000);
        // Half the bandwidth, twice the time.
        assert_eq!(BandwidthConfig::transmit_time_ns(Some(500), 1_000), 16_000);
        // Ten times the payload, ten times the time.
        assert_eq!(
            BandwidthConfig::transmit_time_ns(Some(1_000), 10_000),
            80_000
        );
        // Unlimited links are free.
        assert_eq!(BandwidthConfig::transmit_time_ns(None, 1_000_000), 0);
    }

    #[test]
    fn zero_bandwidth_saturates_to_an_unusably_slow_link() {
        // 0 Mbps never delivers: the old model treated it as infinitely
        // *fast*, silently disabling the constraint.
        assert_eq!(BandwidthConfig::transmit_time_ns(Some(0), 1_000), u64::MAX);
        assert_eq!(BandwidthConfig::transmit_time_ns(Some(0), 1), u64::MAX);
    }

    #[test]
    fn transmit_time_rounds_partial_nanoseconds_up() {
        // 1 byte at 10 Gbps is 0.8 ns of wire time: charged as 1 ns, not 0.
        assert_eq!(BandwidthConfig::transmit_time_ns(Some(10_000), 1), 1);
        // 3 bytes at 7 Mbps = 24 000 / 7 = 3428.57… ns, rounded up.
        assert_eq!(BandwidthConfig::transmit_time_ns(Some(7), 3), 3_429);
        // Exact divisions are unchanged.
        assert_eq!(BandwidthConfig::transmit_time_ns(Some(1_000), 1_000), 8_000);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_preset_is_rejected() {
        let _ = BandwidthConfig::wan_constrained(0);
    }

    #[test]
    fn bandwidth_presets_have_expected_shape() {
        let unlimited = BandwidthConfig::unlimited();
        assert_eq!(unlimited.local_mbps, None);
        assert_eq!(unlimited.wan_mbps, None);
        let wan = BandwidthConfig::wan_constrained(100);
        assert_eq!(wan.wan_mbps, Some(100));
        assert!(wan.local_mbps.unwrap() > 100);
        let uniform = BandwidthConfig::uniform(250);
        assert_eq!(uniform.client_mbps, Some(250));
    }

    #[test]
    fn chunking_and_ingress_default_to_the_sender_side_atomic_model() {
        // Every preset leaves transfers atomic and receivers free: the
        // bit-exact PR 2 configuration.
        for bw in [
            BandwidthConfig::unlimited(),
            BandwidthConfig::uniform(100),
            BandwidthConfig::wan_constrained(20),
        ] {
            assert_eq!(bw.chunk_bytes, None);
            assert_eq!(bw.ingress_mbps, None);
        }
        let tuned = BandwidthConfig::wan_constrained(100)
            .with_chunk_bytes(1_500)
            .with_ingress_mbps(200);
        assert_eq!(tuned.chunk_bytes, Some(1_500));
        assert_eq!(tuned.ingress_mbps, Some(200));
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_size_is_rejected() {
        let _ = BandwidthConfig::unlimited().with_chunk_bytes(0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_ingress_bandwidth_is_rejected() {
        let _ = BandwidthConfig::unlimited().with_ingress_mbps(0);
    }

    #[test]
    fn round_robin_clamps_region_count() {
        let map = RegionMap::round_robin(10, 0);
        assert_eq!(map.regions().len(), 1);
        let map = RegionMap::round_robin(10, 99);
        assert_eq!(map.regions().len(), 6);
    }
}
