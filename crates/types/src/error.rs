//! Error types shared across the workspace.

use crate::ids::{ReplicaId, SeqNum, View};
use std::fmt;

/// Convenience alias used by every crate in the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the substrates and protocol engines.
///
/// Protocol engines are designed to *ignore* malformed input (the standard
/// BFT stance: a bad message is simply dropped), so most of these errors are
/// surfaced by the substrates (crypto, trusted components, execution) and by
/// harness/configuration code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A digital signature or MAC failed verification.
    InvalidSignature {
        /// Human-readable description of what was being verified.
        context: String,
    },
    /// A trusted-component attestation failed verification.
    InvalidAttestation {
        /// Human-readable description of the failure.
        context: String,
    },
    /// A trusted counter/log was asked to move backwards or reuse a slot.
    TrustedMonotonicityViolation {
        /// Counter or log identifier.
        counter: u64,
        /// Current value held by the trusted component.
        current: u64,
        /// Value that was requested.
        requested: u64,
    },
    /// A lookup on a trusted log referenced a slot that holds no value.
    TrustedSlotEmpty {
        /// Log identifier.
        log: u64,
        /// Slot that was looked up.
        slot: u64,
    },
    /// The protocol/system configuration is inconsistent (e.g. `n < 3f + 1`).
    InvalidConfig {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// A message referenced a view this replica has already abandoned.
    StaleView {
        /// View carried by the message.
        got: View,
        /// Current view of the replica.
        current: View,
    },
    /// A replica attempted to execute a sequence number out of order.
    OutOfOrderExecution {
        /// Sequence number whose execution was attempted.
        requested: SeqNum,
        /// Next sequence number the execution queue expects.
        expected: SeqNum,
    },
    /// The named replica is not part of the configured replica set.
    UnknownReplica {
        /// The offending replica id.
        replica: ReplicaId,
    },
    /// A key required by the crypto substrate is missing.
    MissingKey {
        /// Human-readable owner description.
        owner: String,
    },
    /// Serialization or deserialization of a message failed.
    Serialization {
        /// Human-readable description.
        context: String,
    },
    /// The simulator or runtime was driven into an unsupported state.
    Harness {
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidSignature { context } => {
                write!(f, "invalid signature: {context}")
            }
            Error::InvalidAttestation { context } => {
                write!(f, "invalid trusted attestation: {context}")
            }
            Error::TrustedMonotonicityViolation {
                counter,
                current,
                requested,
            } => write!(
                f,
                "trusted counter {counter} monotonicity violation: current {current}, requested {requested}"
            ),
            Error::TrustedSlotEmpty { log, slot } => {
                write!(f, "trusted log {log} has no value at slot {slot}")
            }
            Error::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            Error::StaleView { got, current } => {
                write!(f, "stale view {got}, replica is in {current}")
            }
            Error::OutOfOrderExecution {
                requested,
                expected,
            } => write!(
                f,
                "out-of-order execution: requested {requested}, expected {expected}"
            ),
            Error::UnknownReplica { replica } => write!(f, "unknown replica {replica}"),
            Error::MissingKey { owner } => write!(f, "missing key material for {owner}"),
            Error::Serialization { context } => write!(f, "serialization failure: {context}"),
            Error::Harness { reason } => write!(f, "harness error: {reason}"),
        }
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Builds an [`Error::InvalidConfig`] from anything printable.
    pub fn config(reason: impl Into<String>) -> Self {
        Error::InvalidConfig {
            reason: reason.into(),
        }
    }

    /// Builds an [`Error::Harness`] from anything printable.
    pub fn harness(reason: impl Into<String>) -> Self {
        Error::Harness {
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_fields() {
        let e = Error::TrustedMonotonicityViolation {
            counter: 3,
            current: 10,
            requested: 5,
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains("10") && s.contains('5'));
    }

    #[test]
    fn helpers_build_expected_variants() {
        assert!(matches!(Error::config("x"), Error::InvalidConfig { .. }));
        assert!(matches!(Error::harness("x"), Error::Harness { .. }));
    }

    #[test]
    fn errors_are_std_errors() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&Error::config("bad"));
    }
}
