//! Identifier newtypes for replicas, clients, views and sequence numbers.
//!
//! All identifiers are small `Copy` newtypes so that they can be passed by
//! value everywhere, used as map keys, and serialized cheaply.

use std::fmt;

/// Identifier of a replica (a consensus participant).
///
/// Replicas are numbered `0..n` within a deployment. Replica `v mod n` is the
/// primary of view `v`, mirroring the PBFT-style rotation used by every
/// protocol in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ReplicaId(pub u32);

impl ReplicaId {
    /// Returns the numeric index of this replica.
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// Builds a replica id from a numeric index.
    pub fn from_usize(idx: usize) -> Self {
        ReplicaId(idx as u32)
    }
}

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifier of a client of the replicated service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ClientId(pub u64);

impl ClientId {
    /// Returns the numeric index of this client.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A node is either a replica or a client; used for network addressing in the
/// simulator and the threaded runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeId {
    /// A consensus replica.
    Replica(ReplicaId),
    /// A client of the replicated service.
    Client(ClientId),
}

impl NodeId {
    /// Returns the replica id if this node is a replica.
    pub fn as_replica(self) -> Option<ReplicaId> {
        match self {
            NodeId::Replica(r) => Some(r),
            NodeId::Client(_) => None,
        }
    }

    /// Returns the client id if this node is a client.
    pub fn as_client(self) -> Option<ClientId> {
        match self {
            NodeId::Client(c) => Some(c),
            NodeId::Replica(_) => None,
        }
    }

    /// Returns `true` when the node is a replica.
    pub fn is_replica(self) -> bool {
        matches!(self, NodeId::Replica(_))
    }
}

impl From<ReplicaId> for NodeId {
    fn from(r: ReplicaId) -> Self {
        NodeId::Replica(r)
    }
}

impl From<ClientId> for NodeId {
    fn from(c: ClientId) -> Self {
        NodeId::Client(c)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Replica(r) => write!(f, "{r}"),
            NodeId::Client(c) => write!(f, "{c}"),
        }
    }
}

/// A view number: the epoch during which a specific replica acts as primary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct View(pub u64);

impl View {
    /// The initial view of the system.
    pub const ZERO: View = View(0);

    /// Returns the next view (used when a view change is triggered).
    pub fn next(self) -> View {
        View(self.0 + 1)
    }

    /// Returns the primary replica for this view in a system of `n` replicas.
    pub fn primary(self, n: usize) -> ReplicaId {
        ReplicaId((self.0 % n as u64) as u32)
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A consensus sequence number (slot); transactions are executed in sequence
/// number order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SeqNum(pub u64);

impl SeqNum {
    /// The first sequence number assigned by the protocols.
    pub const FIRST: SeqNum = SeqNum(1);

    /// Returns the next sequence number.
    pub fn next(self) -> SeqNum {
        SeqNum(self.0 + 1)
    }

    /// Returns the previous sequence number, or `None` at zero.
    pub fn prev(self) -> Option<SeqNum> {
        self.0.checked_sub(1).map(SeqNum)
    }

    /// Returns the raw value.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// Identifier of a client request: unique per client, monotonically
/// increasing. Together with [`ClientId`] it uniquely identifies a
/// transaction and allows replicas to de-duplicate retransmissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RequestId(pub u64);

impl RequestId {
    /// Returns the next request id for the issuing client.
    pub fn next(self) -> RequestId {
        RequestId(self.0 + 1)
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_primary_rotates_over_all_replicas() {
        let n = 4;
        let primaries: Vec<ReplicaId> = (0..8u64).map(|v| View(v).primary(n)).collect();
        assert_eq!(
            primaries,
            vec![
                ReplicaId(0),
                ReplicaId(1),
                ReplicaId(2),
                ReplicaId(3),
                ReplicaId(0),
                ReplicaId(1),
                ReplicaId(2),
                ReplicaId(3),
            ]
        );
    }

    #[test]
    fn seqnum_next_and_prev_are_inverses() {
        let k = SeqNum(41);
        assert_eq!(k.next(), SeqNum(42));
        assert_eq!(k.next().prev(), Some(k));
        assert_eq!(SeqNum(0).prev(), None);
    }

    #[test]
    fn node_id_conversions() {
        let r: NodeId = ReplicaId(3).into();
        let c: NodeId = ClientId(7).into();
        assert!(r.is_replica());
        assert!(!c.is_replica());
        assert_eq!(r.as_replica(), Some(ReplicaId(3)));
        assert_eq!(r.as_client(), None);
        assert_eq!(c.as_client(), Some(ClientId(7)));
    }

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(ReplicaId(2).to_string(), "r2");
        assert_eq!(ClientId(9).to_string(), "c9");
        assert_eq!(View(4).to_string(), "v4");
        assert_eq!(SeqNum(10).to_string(), "k10");
        assert_eq!(NodeId::Replica(ReplicaId(1)).to_string(), "r1");
    }

    #[test]
    fn view_next_increments() {
        assert_eq!(View::ZERO.next(), View(1));
        assert_eq!(View(9).next(), View(10));
    }

    #[test]
    fn request_id_orders() {
        assert!(RequestId(1) < RequestId(2));
        assert_eq!(RequestId(1).next(), RequestId(2));
    }
}
