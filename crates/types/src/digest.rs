//! Fixed-size message digests.
//!
//! The digest *data type* lives here so that it can appear in transactions,
//! batches and protocol messages without pulling in the crypto crate; the
//! actual SHA-256 computation is provided by `flexitrust-crypto`.

use std::fmt;

/// A 32-byte collision-resistant digest (`Hash(v)` in the paper).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// The all-zero digest, used for no-op slots and empty payloads.
    pub const ZERO: Digest = Digest([0u8; 32]);

    /// Builds a digest from raw bytes.
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        Digest(bytes)
    }

    /// Returns the raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Returns `true` when this is the all-zero digest.
    pub fn is_zero(&self) -> bool {
        self.0 == [0u8; 32]
    }

    /// Builds a deterministic "tag" digest from a 64-bit value; useful in
    /// tests and for no-op markers where a real hash is unnecessary.
    pub fn from_u64_tag(tag: u64) -> Self {
        let mut bytes = [0u8; 32];
        bytes[..8].copy_from_slice(&tag.to_le_bytes());
        Digest(bytes)
    }

    /// Short hexadecimal prefix used in log and debug output.
    pub fn short_hex(&self) -> String {
        self.0[..4].iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({}..)", self.short_hex())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_digest_is_zero() {
        assert!(Digest::ZERO.is_zero());
        assert!(!Digest::from_u64_tag(1).is_zero());
    }

    #[test]
    fn tag_digests_are_distinct_and_deterministic() {
        assert_eq!(Digest::from_u64_tag(7), Digest::from_u64_tag(7));
        assert_ne!(Digest::from_u64_tag(7), Digest::from_u64_tag(8));
    }

    #[test]
    fn display_is_64_hex_chars() {
        let d = Digest::from_u64_tag(0xdead_beef);
        assert_eq!(d.to_string().len(), 64);
        assert_eq!(d.short_hex().len(), 8);
    }

    #[test]
    fn as_ref_exposes_all_bytes() {
        let d = Digest::from_u64_tag(3);
        assert_eq!(d.as_ref().len(), 32);
        assert_eq!(d.as_bytes()[0], 3);
    }
}
