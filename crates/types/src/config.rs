//! System and protocol configuration.
//!
//! The central object is [`SystemConfig`], which fixes the fault threshold
//! `f`, the replication factor (`2f + 1` for trust-bft protocols, `3f + 1`
//! for bft and FlexiTrust protocols), batching, timeouts and checkpointing.
//! Quorum sizes are derived here in one place so that every protocol engine
//! uses exactly the thresholds the paper describes.

use crate::error::{Error, Result};
use crate::ids::ReplicaId;
use std::fmt;

/// Identifies one of the protocols implemented in this repository.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolId {
    /// PBFT (Castro & Liskov), the classic three-phase 3f+1 protocol.
    Pbft,
    /// Zyzzyva, speculative single-phase 3f+1 protocol (client needs all n
    /// matching replies for the fast path).
    Zyzzyva,
    /// PBFT-EA (attested append-only memory), three-phase 2f+1 trust-bft.
    PbftEa,
    /// MinBFT, two-phase 2f+1 trust-bft using trusted counters.
    MinBft,
    /// MinZZ, speculative single-phase 2f+1 trust-bft.
    MinZz,
    /// OPBFT-EA: the authors' PBFT-EA variant with parallel consensus
    /// invocations.
    OpbftEa,
    /// CheapBFT: f+1 active replicas in the failure-free case (related work).
    CheapBft,
    /// Flexi-BFT: the paper's two-phase FlexiTrust protocol.
    FlexiBft,
    /// Flexi-ZZ: the paper's single-phase speculative FlexiTrust protocol.
    FlexiZz,
    /// oFlexi-BFT: Flexi-BFT with parallel consensus invocations disabled.
    OFlexiBft,
    /// oFlexi-ZZ: Flexi-ZZ with parallel consensus invocations disabled.
    OFlexiZz,
}

impl ProtocolId {
    /// All protocols evaluated in the paper's figures.
    pub const ALL: [ProtocolId; 11] = [
        ProtocolId::Pbft,
        ProtocolId::Zyzzyva,
        ProtocolId::PbftEa,
        ProtocolId::MinBft,
        ProtocolId::MinZz,
        ProtocolId::OpbftEa,
        ProtocolId::CheapBft,
        ProtocolId::FlexiBft,
        ProtocolId::FlexiZz,
        ProtocolId::OFlexiBft,
        ProtocolId::OFlexiZz,
    ];

    /// Returns the canonical display name used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolId::Pbft => "Pbft",
            ProtocolId::Zyzzyva => "Zyzzyva",
            ProtocolId::PbftEa => "Pbft-EA",
            ProtocolId::MinBft => "MinBFT",
            ProtocolId::MinZz => "MinZZ",
            ProtocolId::OpbftEa => "Opbft-ea",
            ProtocolId::CheapBft => "CheapBFT",
            ProtocolId::FlexiBft => "Flexi-BFT",
            ProtocolId::FlexiZz => "Flexi-ZZ",
            ProtocolId::OFlexiBft => "oFlexi-BFT",
            ProtocolId::OFlexiZz => "oFlexi-ZZ",
        }
    }

    /// Returns the replication factor the protocol is designed for.
    pub fn replication_factor(self) -> ReplicationFactor {
        match self {
            ProtocolId::Pbft
            | ProtocolId::Zyzzyva
            | ProtocolId::FlexiBft
            | ProtocolId::FlexiZz
            | ProtocolId::OFlexiBft
            | ProtocolId::OFlexiZz => ReplicationFactor::ThreeFPlusOne,
            ProtocolId::PbftEa
            | ProtocolId::MinBft
            | ProtocolId::MinZz
            | ProtocolId::OpbftEa
            | ProtocolId::CheapBft => ReplicationFactor::TwoFPlusOne,
        }
    }

    /// Returns `true` for the protocols that rely on trusted components.
    pub fn uses_trusted_component(self) -> bool {
        !matches!(self, ProtocolId::Pbft | ProtocolId::Zyzzyva)
    }

    /// Returns `true` for the FlexiTrust protocols introduced by the paper.
    pub fn is_flexitrust(self) -> bool {
        matches!(
            self,
            ProtocolId::FlexiBft
                | ProtocolId::FlexiZz
                | ProtocolId::OFlexiBft
                | ProtocolId::OFlexiZz
        )
    }

    /// Parses a protocol name (case-insensitive, accepts both paper and
    /// code spellings).
    pub fn parse(name: &str) -> Option<ProtocolId> {
        let lower = name.to_ascii_lowercase().replace(['-', '_'], "");
        Some(match lower.as_str() {
            "pbft" => ProtocolId::Pbft,
            "zyzzyva" => ProtocolId::Zyzzyva,
            "pbftea" => ProtocolId::PbftEa,
            "minbft" => ProtocolId::MinBft,
            "minzz" => ProtocolId::MinZz,
            "opbftea" => ProtocolId::OpbftEa,
            "cheapbft" => ProtocolId::CheapBft,
            "flexibft" => ProtocolId::FlexiBft,
            "flexizz" => ProtocolId::FlexiZz,
            "oflexibft" => ProtocolId::OFlexiBft,
            "oflexizz" => ProtocolId::OFlexiZz,
            _ => return None,
        })
    }
}

impl fmt::Display for ProtocolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Replication factor regimes studied by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplicationFactor {
    /// `n = 2f + 1`: the regime targeted by existing trust-bft protocols.
    TwoFPlusOne,
    /// `n = 3f + 1`: the regime of classic BFT and the FlexiTrust protocols.
    ThreeFPlusOne,
}

impl ReplicationFactor {
    /// Number of replicas for a given fault threshold `f`.
    pub fn replicas(self, f: usize) -> usize {
        match self {
            ReplicationFactor::TwoFPlusOne => 2 * f + 1,
            ReplicationFactor::ThreeFPlusOne => 3 * f + 1,
        }
    }
}

/// Named quorum rules used by the protocols; centralised so quorum math is
/// written (and tested) exactly once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuorumRule {
    /// `f + 1` matching messages (trust-bft prepare/commit quorums, client
    /// reply threshold of 3f+1 protocols).
    FPlusOne,
    /// `2f + 1` matching messages (PBFT prepare/commit quorums, FlexiTrust
    /// quorums, Flexi-ZZ client reply threshold).
    TwoFPlusOne,
    /// All `n` replicas (Zyzzyva / MinZZ fast-path reply threshold).
    AllReplicas,
}

/// Static configuration of one deployment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemConfig {
    /// The protocol being run.
    pub protocol: ProtocolId,
    /// Maximum number of Byzantine replicas tolerated.
    pub f: usize,
    /// Total number of replicas (`2f + 1` or `3f + 1` depending on protocol).
    pub n: usize,
    /// Number of transactions per consensus batch.
    pub batch_size: usize,
    /// How many consensus instances may be in flight concurrently at the
    /// primary. Sequential protocols use 1.
    pub max_in_flight: usize,
    /// Checkpoint period in sequence numbers.
    pub checkpoint_interval: u64,
    /// View-change timeout in microseconds (simulated or real).
    pub view_timeout_us: u64,
    /// Client retry timeout in microseconds.
    pub client_timeout_us: u64,
    /// Number of keyspace shards the execution-layer store partitions
    /// records into. Purely a parallelism knob: digests and results are
    /// identical for every shard count.
    pub exec_shards: usize,
    /// Number of worker threads applying committed batches to the store;
    /// 1 executes inline on the replica's thread.
    pub exec_workers: usize,
}

impl SystemConfig {
    /// Builds the default configuration the paper uses for a protocol at
    /// fault threshold `f`: the replication factor implied by the protocol,
    /// batch size 100, checkpointing every 1000 sequence numbers.
    pub fn for_protocol(protocol: ProtocolId, f: usize) -> Self {
        let n = protocol.replication_factor().replicas(f);
        let max_in_flight = if protocol_is_parallel(protocol) {
            256
        } else {
            1
        };
        SystemConfig {
            protocol,
            f,
            n,
            batch_size: 100,
            max_in_flight,
            checkpoint_interval: 1000,
            view_timeout_us: 2_000_000,
            client_timeout_us: 1_000_000,
            exec_shards: 8,
            exec_workers: 1,
        }
    }

    /// Returns the configuration with `workers` execution workers.
    pub fn with_exec_workers(mut self, workers: usize) -> Self {
        self.exec_workers = workers.max(1);
        self
    }

    /// Validates the internal consistency of the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.f == 0 {
            return Err(Error::config("f must be at least 1"));
        }
        let required = self.protocol.replication_factor().replicas(self.f);
        if self.n < required {
            return Err(Error::config(format!(
                "protocol {} with f = {} requires at least {} replicas, got {}",
                self.protocol.name(),
                self.f,
                required,
                self.n
            )));
        }
        if self.batch_size == 0 {
            return Err(Error::config("batch size must be positive"));
        }
        if self.max_in_flight == 0 {
            return Err(Error::config("max_in_flight must be positive"));
        }
        if self.checkpoint_interval == 0 {
            return Err(Error::config("checkpoint interval must be positive"));
        }
        if self.exec_shards == 0 {
            return Err(Error::config("exec_shards must be positive"));
        }
        if self.exec_workers == 0 {
            return Err(Error::config("exec_workers must be positive"));
        }
        Ok(())
    }

    /// Iterator over all replica ids of the deployment.
    pub fn replicas(&self) -> impl Iterator<Item = ReplicaId> + '_ {
        (0..self.n as u32).map(ReplicaId)
    }

    /// Size of an `f + 1` quorum.
    pub fn small_quorum(&self) -> usize {
        self.f + 1
    }

    /// Size of a `2f + 1` quorum.
    pub fn large_quorum(&self) -> usize {
        2 * self.f + 1
    }

    /// Number of messages that satisfies the given quorum rule.
    pub fn quorum(&self, rule: QuorumRule) -> usize {
        match rule {
            QuorumRule::FPlusOne => self.small_quorum(),
            QuorumRule::TwoFPlusOne => self.large_quorum(),
            QuorumRule::AllReplicas => self.n,
        }
    }

    /// Returns `true` when `replica` is within the configured replica set.
    pub fn contains(&self, replica: ReplicaId) -> bool {
        replica.as_usize() < self.n
    }
}

/// Whether a protocol supports out-of-order (parallel) consensus invocations.
///
/// This mirrors Figure 1 of the paper: only PBFT, Zyzzyva and the (non-`o`)
/// FlexiTrust protocols process consensus instances concurrently; every
/// trust-bft protocol and the `oFlexi-*` ablations are sequential.
pub fn protocol_is_parallel(protocol: ProtocolId) -> bool {
    matches!(
        protocol,
        ProtocolId::Pbft
            | ProtocolId::Zyzzyva
            | ProtocolId::FlexiBft
            | ProtocolId::FlexiZz
            | ProtocolId::OpbftEa
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replication_factor_math() {
        assert_eq!(ReplicationFactor::TwoFPlusOne.replicas(8), 17);
        assert_eq!(ReplicationFactor::ThreeFPlusOne.replicas(8), 25);
        assert_eq!(ReplicationFactor::TwoFPlusOne.replicas(20), 41);
        assert_eq!(ReplicationFactor::ThreeFPlusOne.replicas(20), 61);
    }

    #[test]
    fn protocol_replication_factor_matches_paper() {
        assert_eq!(
            ProtocolId::Pbft.replication_factor(),
            ReplicationFactor::ThreeFPlusOne
        );
        assert_eq!(
            ProtocolId::MinBft.replication_factor(),
            ReplicationFactor::TwoFPlusOne
        );
        assert_eq!(
            ProtocolId::FlexiZz.replication_factor(),
            ReplicationFactor::ThreeFPlusOne
        );
        assert_eq!(
            ProtocolId::OpbftEa.replication_factor(),
            ReplicationFactor::TwoFPlusOne
        );
    }

    #[test]
    fn trusted_component_usage_matches_paper() {
        assert!(!ProtocolId::Pbft.uses_trusted_component());
        assert!(!ProtocolId::Zyzzyva.uses_trusted_component());
        for p in [
            ProtocolId::PbftEa,
            ProtocolId::MinBft,
            ProtocolId::MinZz,
            ProtocolId::FlexiBft,
            ProtocolId::FlexiZz,
        ] {
            assert!(p.uses_trusted_component(), "{p} should use a TC");
        }
    }

    #[test]
    fn quorum_sizes_for_f8() {
        let cfg = SystemConfig::for_protocol(ProtocolId::FlexiBft, 8);
        assert_eq!(cfg.n, 25);
        assert_eq!(cfg.small_quorum(), 9);
        assert_eq!(cfg.large_quorum(), 17);
        assert_eq!(cfg.quorum(QuorumRule::AllReplicas), 25);

        let cfg = SystemConfig::for_protocol(ProtocolId::MinBft, 8);
        assert_eq!(cfg.n, 17);
        assert_eq!(cfg.quorum(QuorumRule::FPlusOne), 9);
    }

    #[test]
    fn validation_rejects_inconsistent_configs() {
        let mut cfg = SystemConfig::for_protocol(ProtocolId::Pbft, 4);
        assert!(cfg.validate().is_ok());
        cfg.n = 10; // 3f + 1 = 13 required.
        assert!(cfg.validate().is_err());
        cfg = SystemConfig::for_protocol(ProtocolId::Pbft, 4);
        cfg.batch_size = 0;
        assert!(cfg.validate().is_err());
        cfg = SystemConfig::for_protocol(ProtocolId::Pbft, 4);
        cfg.f = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn parallelism_matches_figure_1() {
        assert!(protocol_is_parallel(ProtocolId::Pbft));
        assert!(protocol_is_parallel(ProtocolId::FlexiBft));
        assert!(protocol_is_parallel(ProtocolId::FlexiZz));
        assert!(protocol_is_parallel(ProtocolId::OpbftEa));
        assert!(!protocol_is_parallel(ProtocolId::MinBft));
        assert!(!protocol_is_parallel(ProtocolId::MinZz));
        assert!(!protocol_is_parallel(ProtocolId::PbftEa));
        assert!(!protocol_is_parallel(ProtocolId::OFlexiBft));
        assert!(!protocol_is_parallel(ProtocolId::OFlexiZz));
    }

    #[test]
    fn sequential_protocols_get_in_flight_of_one() {
        assert_eq!(
            SystemConfig::for_protocol(ProtocolId::MinBft, 4).max_in_flight,
            1
        );
        assert!(SystemConfig::for_protocol(ProtocolId::FlexiZz, 4).max_in_flight > 1);
    }

    #[test]
    fn parse_accepts_paper_spellings() {
        assert_eq!(ProtocolId::parse("Flexi-ZZ"), Some(ProtocolId::FlexiZz));
        assert_eq!(ProtocolId::parse("pbft_ea"), Some(ProtocolId::PbftEa));
        assert_eq!(ProtocolId::parse("oFlexi-BFT"), Some(ProtocolId::OFlexiBft));
        assert_eq!(ProtocolId::parse("nonsense"), None);
    }

    #[test]
    fn all_protocols_have_unique_names() {
        let mut names: Vec<&str> = ProtocolId::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ProtocolId::ALL.len());
    }

    #[test]
    fn replicas_iterator_covers_all() {
        let cfg = SystemConfig::for_protocol(ProtocolId::Pbft, 1);
        let ids: Vec<ReplicaId> = cfg.replicas().collect();
        assert_eq!(ids.len(), 4);
        assert!(cfg.contains(ReplicaId(3)));
        assert!(!cfg.contains(ReplicaId(4)));
    }
}
