//! A threaded cluster: one thread per replica, channels as the network.
//!
//! The replica loop, the timer machinery and the closed-loop workload
//! driver here are shared with the TCP deployment (`crate::tcp`): both
//! hosts differ only in their [`Transport`] — how an outbound message or
//! reply physically leaves the replica thread.

use crossbeam::channel::{bounded, Receiver, Sender};
use flexitrust_baselines::{CheapBft, MinBft, MinZz, OpbftEa, Pbft, PbftEa, Zyzzyva};
use flexitrust_core::{FlexiBft, FlexiZz};
use flexitrust_host::{CommittedTxn, Dispatcher, EngineHost, TimerToken};
use flexitrust_protocol::{
    ClientLibrary, ClientReply, ConsensusEngine, Message, RequestStatus, SharedMessage, TimerKind,
};
use flexitrust_trusted::{AttestationMode, Enclave, EnclaveConfig, EnclaveRegistry};
use flexitrust_types::{ClientId, ProtocolId, ReplicaId, RequestId, SystemConfig, Transaction};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::primary::PrimaryTracker;

/// Messages flowing into a replica thread.
pub(crate) enum Input {
    /// A peer protocol message (a shared handle: the sender's allocation,
    /// reference-counted across every inbox it was fanned out to).
    Peer(ReplicaId, SharedMessage),
    /// A batch of client transactions.
    Client(Vec<Transaction>),
    /// Stop the replica loop.
    Shutdown,
}

/// How a replica thread's outbound traffic leaves the process: over
/// channels ([`ChannelTransport`]) or over TCP sockets
/// (`crate::tcp::SocketTransport`). Cross-replica sends must never block —
/// two replicas with mutually full inboxes would deadlock the cluster — so
/// implementations drop (and count) what they cannot enqueue; BFT protocols
/// tolerate message loss by design.
pub(crate) trait Transport {
    /// Queue `msg` from `from` for delivery to `to`. The shared handle is
    /// queued (or encoded) as-is — payload bytes are never copied per
    /// destination.
    fn send_peer(&mut self, from: ReplicaId, to: ReplicaId, msg: SharedMessage);

    /// Queue `msg` from `from` for delivery to every replica (sender
    /// included). The default fans out to per-destination sends, one
    /// reference-count bump each; a serialising transport overrides it to
    /// encode the wire bytes once per broadcast instead of once per
    /// destination.
    fn broadcast_peer(&mut self, from: ReplicaId, replicas: usize, msg: SharedMessage) {
        for to in 0..replicas {
            self.send_peer(from, ReplicaId(to as u32), Arc::clone(&msg));
        }
    }

    /// Queue a client reply emitted by `from`.
    fn send_reply(&mut self, from: ReplicaId, reply: ClientReply);
}

/// The channel-network transport: peers are reached through their bounded
/// inboxes, clients through a shared reply channel.
pub(crate) struct ChannelTransport {
    pub(crate) peers: Vec<Sender<Input>>,
    pub(crate) replies: Sender<ClientReply>,
    pub(crate) dropped: Arc<AtomicU64>,
}

impl Transport for ChannelTransport {
    fn send_peer(&mut self, from: ReplicaId, to: ReplicaId, msg: SharedMessage) {
        // `try_send`, not `send`: a blocking send on a full inbox while our
        // own inbox is also full (with the peer blocked symmetrically on
        // ours) deadlocks both replicas. Dropping is safe — every protocol
        // here already survives lossy networks — and is surfaced through
        // the drop counter in `ClusterSummary`.
        // `.get`, not indexing: a corrupt destination id is a counted
        // drop, never a dead worker thread.
        match self.peers.get(to.as_usize()) {
            Some(peer) if peer.try_send(Input::Peer(from, msg)).is_ok() => {}
            _ => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn send_reply(&mut self, _from: ReplicaId, reply: ClientReply) {
        if self.replies.try_send(reply).is_err() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A commit-progress-triggered crash/recover window for one replica,
/// mirroring the simulator's `CrashAtSeq` chaos knob: the replica crashes
/// once its *own* last-executed sequence reaches `crash_at_seq` (discarding
/// all input and timers while down) and rejoins once the *rest* of the
/// cluster's frontier reaches `recover_at_seq`, asking every peer for the
/// latest stable checkpoint via `CheckpointRequest`. Keying on sequence
/// numbers instead of wall-clock time makes the same window comparable
/// between the simulator and a threaded cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashWindow {
    /// The replica that crashes and later rejoins.
    pub replica: ReplicaId,
    /// Crash once this replica's own last-executed sequence reaches this.
    pub crash_at_seq: u64,
    /// Recover once the max last-executed over the other replicas reaches
    /// this.
    pub recover_at_seq: u64,
}

/// Per-replica chaos state threaded through [`replica_loop`]: the shared
/// frontier board every replica publishes its last-executed sequence to,
/// and this replica's crash window (if any).
pub(crate) struct ReplicaChaos {
    pub(crate) frontiers: Arc<Vec<AtomicU64>>,
    pub(crate) window: Option<CrashWindow>,
}

impl ReplicaChaos {
    /// A fresh frontier board for `n` replicas.
    pub(crate) fn board(n: usize) -> Arc<Vec<AtomicU64>> {
        Arc::new((0..n).map(|_| AtomicU64::new(0)).collect())
    }

    /// No crash window; publishes to a private board nobody reads.
    pub(crate) fn inert(n: usize) -> Self {
        ReplicaChaos {
            frontiers: Self::board(n),
            window: None,
        }
    }
}

/// Summary of a workload run against a cluster (channel or TCP).
#[derive(Debug, Clone)]
pub struct ClusterSummary {
    /// Transactions whose reply quorum was reached.
    pub completed_txns: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Observed throughput in transactions per second.
    pub throughput_tps: f64,
    /// Number of replicas in the cluster.
    pub n: usize,
    /// Messages (peer sends and replies) dropped because a transport queue
    /// was full; nonzero values mean the run shed load instead of
    /// deadlocking.
    pub dropped_messages: u64,
    /// Every completed transaction with the sequence number it executed at,
    /// sorted by sequence; comparable against the simulator's commit log.
    pub commit_log: Vec<CommittedTxn>,
}

/// A running in-process cluster for one protocol.
pub struct Cluster {
    config: Arc<SystemConfig>,
    inboxes: Vec<Sender<Input>>,
    replies: Receiver<ClientReply>,
    tracker: PrimaryTracker,
    dropped: Arc<AtomicU64>,
    frontiers: Arc<Vec<AtomicU64>>,
    handles: Vec<JoinHandle<()>>,
}

pub(crate) fn build_engine(
    protocol: ProtocolId,
    config: &Arc<SystemConfig>,
    id: ReplicaId,
    registry: &EnclaveRegistry,
) -> Box<dyn ConsensusEngine> {
    let counter_enclave =
        || Enclave::shared(EnclaveConfig::counter_only(id, AttestationMode::Real));
    let log_enclave = || Enclave::shared(EnclaveConfig::log_based(id, AttestationMode::Real));
    match protocol {
        ProtocolId::Pbft => Box::new(Pbft::engine(Arc::clone(config), id)),
        ProtocolId::Zyzzyva => Box::new(Zyzzyva::engine(Arc::clone(config), id)),
        ProtocolId::PbftEa => Box::new(PbftEa::engine(
            Arc::clone(config),
            id,
            log_enclave(),
            registry.clone(),
        )),
        ProtocolId::OpbftEa => Box::new(OpbftEa::engine(
            Arc::clone(config),
            id,
            log_enclave(),
            registry.clone(),
        )),
        ProtocolId::MinBft => Box::new(MinBft::engine(
            Arc::clone(config),
            id,
            counter_enclave(),
            registry.clone(),
        )),
        ProtocolId::MinZz => Box::new(MinZz::engine(
            Arc::clone(config),
            id,
            counter_enclave(),
            registry.clone(),
        )),
        ProtocolId::CheapBft => Box::new(CheapBft::engine(
            Arc::clone(config),
            id,
            counter_enclave(),
            registry.clone(),
        )),
        ProtocolId::FlexiBft | ProtocolId::OFlexiBft => Box::new(FlexiBft::new(
            Arc::clone(config),
            id,
            counter_enclave(),
            registry.clone(),
        )),
        ProtocolId::FlexiZz | ProtocolId::OFlexiZz => Box::new(FlexiZz::new(
            Arc::clone(config),
            id,
            counter_enclave(),
            registry.clone(),
        )),
    }
}

/// Builds the standard cluster configuration for a threaded deployment.
pub(crate) fn cluster_config(protocol: ProtocolId, f: usize, batch_size: usize) -> SystemConfig {
    let mut config = SystemConfig::for_protocol(protocol, f);
    config.batch_size = batch_size;
    // Keep view-change timers long: the threaded runtimes are used for
    // failure-free correctness runs and examples.
    config.view_timeout_us = 30_000_000;
    config
}

impl Cluster {
    /// Starts a cluster of `n` replica threads for `protocol` with fault
    /// threshold `f` and the given batch size, using real Ed25519
    /// attestations.
    pub fn start(protocol: ProtocolId, f: usize, batch_size: usize) -> Self {
        Self::start_with_workers(protocol, f, batch_size, 1)
    }

    /// Like [`Cluster::start`], with `exec_workers` execution-layer shard
    /// workers per replica (1 = serial). Commit sequences and state
    /// digests are identical for every worker count.
    pub fn start_with_workers(
        protocol: ProtocolId,
        f: usize,
        batch_size: usize,
        exec_workers: usize,
    ) -> Self {
        Self::start_with_chaos(protocol, f, batch_size, exec_workers, None, None)
    }

    /// Like [`Cluster::start_with_workers`], with an optional checkpoint
    /// interval override (chaos scenarios shorten it so state transfer
    /// fits test-scale runs) and an optional [`CrashWindow`]: the window's
    /// replica crashes mid-run and rejoins via checkpoint state transfer.
    pub fn start_with_chaos(
        protocol: ProtocolId,
        f: usize,
        batch_size: usize,
        exec_workers: usize,
        checkpoint_interval: Option<u64>,
        window: Option<CrashWindow>,
    ) -> Self {
        // One config allocation for the whole cluster; replica threads and
        // engines share it by reference.
        let mut base = cluster_config(protocol, f, batch_size).with_exec_workers(exec_workers);
        if let Some(interval) = checkpoint_interval {
            base.checkpoint_interval = interval;
        }
        let config = Arc::new(base);
        let registry = EnclaveRegistry::deterministic(config.n, AttestationMode::Real);
        let tracker = PrimaryTracker::new(config.n);
        let dropped = Arc::new(AtomicU64::new(0));
        let frontiers = ReplicaChaos::board(config.n);

        let (reply_tx, reply_rx) = bounded::<ClientReply>(1 << 16);
        let mut inbox_txs = Vec::with_capacity(config.n);
        let mut inbox_rxs = Vec::with_capacity(config.n);
        for _ in 0..config.n {
            let (tx, rx) = bounded::<Input>(1 << 16);
            inbox_txs.push(tx);
            inbox_rxs.push(rx);
        }

        let mut handles = Vec::with_capacity(config.n);
        for (i, rx) in inbox_rxs.into_iter().enumerate() {
            let id = ReplicaId(i as u32);
            let mut engine = build_engine(protocol, &config, id, &registry);
            let transport = ChannelTransport {
                peers: inbox_txs.clone(),
                replies: reply_tx.clone(),
                dropped: Arc::clone(&dropped),
            };
            let chaos = ReplicaChaos {
                frontiers: Arc::clone(&frontiers),
                window: window.filter(|w| w.replica == id),
            };
            let thread_tracker = tracker.clone();
            handles.push(std::thread::spawn(move || {
                replica_loop(&mut *engine, rx, transport, thread_tracker, chaos);
            }));
        }

        Cluster {
            config,
            inboxes: inbox_txs,
            replies: reply_rx,
            tracker,
            dropped,
            frontiers,
            handles,
        }
    }

    /// The cluster's configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Each replica's last-executed sequence number, as most recently
    /// published by its thread. Lets chaos tests assert that a recovered
    /// replica caught back up past its crash point.
    pub fn replica_frontiers(&self) -> Vec<u64> {
        self.frontiers
            .iter()
            .map(|f| f.load(Ordering::Relaxed))
            .collect()
    }

    /// The replica currently believed to lead (the primary of the most
    /// advanced view any replica has published).
    pub fn current_primary(&self) -> ReplicaId {
        self.tracker.current_primary()
    }

    /// Submits transactions to the current primary replica.
    pub fn submit(&self, txns: Vec<Transaction>) {
        let primary = self.tracker.current_primary();
        if let Some(inbox) = self.inboxes.get(primary.as_usize()) {
            let _ = inbox.send(Input::Client(txns));
        }
    }

    /// Runs `total_txns` transactions (from `clients` logical clients)
    /// through the cluster and waits until each has reached the protocol's
    /// reply quorum, or until `timeout` expires.
    pub fn run_workload(
        &self,
        total_txns: usize,
        clients: usize,
        timeout: Duration,
    ) -> ClusterSummary {
        drive_workload(
            &self.config,
            |txns| self.submit(txns),
            &self.replies,
            &self.dropped,
            total_txns,
            clients,
            timeout,
        )
    }

    /// Stops every replica thread.
    pub fn shutdown(self) {
        for tx in &self.inboxes {
            let _ = tx.send(Input::Shutdown);
        }
        for handle in self.handles {
            let _ = handle.join();
        }
    }
}

/// The shared closed-loop workload driver: submits `total_txns` in
/// batch-size chunks through `submit`, drains `replies` through per-client
/// `ClientLibrary` quorum tracking, and reports the commit log.
pub(crate) fn drive_workload(
    config: &SystemConfig,
    mut submit: impl FnMut(Vec<Transaction>),
    replies: &Receiver<ClientReply>,
    dropped: &AtomicU64,
    total_txns: usize,
    clients: usize,
    timeout: Duration,
) -> ClusterSummary {
    // Snapshot the shared drop counter so the summary reports *this run's*
    // drops, not the cluster's lifetime total (a second workload on the
    // same cluster must not inherit the first run's shed load).
    let dropped_at_start = dropped.load(Ordering::Relaxed);
    let properties_quorum = {
        // The reply rule follows the protocol (Figure 1 column mapping).
        use flexitrust_protocol::ProtocolProperties;
        ProtocolProperties::for_protocol(config.protocol).reply_quorum
    };
    // Indexed by client id: client c's library is libraries[c]. A Vec
    // instead of a map makes the lookups below structurally infallible —
    // no unwrap to kill the driver on a malformed reply.
    let mut libraries: Vec<ClientLibrary> = (0..clients as u64)
        .map(|c| ClientLibrary::new(ClientId(c), config, properties_quorum))
        .collect();

    let start = Instant::now();
    let mut submitted = Vec::with_capacity(total_txns);
    for i in 0..total_txns {
        let client = ClientId((i % clients) as u64);
        let request = RequestId((i / clients) as u64 + 1);
        let txn = Transaction::new(
            client,
            request,
            flexitrust_types::KvOp::Update {
                key: i as u64,
                value: vec![i as u8; 16].into(),
            },
        );
        libraries[client.0 as usize].begin(request);
        submitted.push(txn);
    }
    for chunk in submitted.chunks(config.batch_size.max(1)) {
        // lint:allow(Z01): copies Arc-backed Transaction handles into a
        // fresh batch Vec (refcount bumps), not payload bytes — the
        // submission API takes ownership per batch.
        submit(chunk.to_vec());
    }

    let mut completed = 0u64;
    let mut commit_log: Vec<CommittedTxn> = Vec::with_capacity(total_txns);
    while completed < total_txns as u64 && start.elapsed() < timeout {
        match replies.recv_timeout(Duration::from_millis(50)) {
            Ok(reply) => {
                if let Some(library) = libraries.get_mut(reply.client.0 as usize) {
                    // Count a request exactly when it first completes;
                    // late duplicate replies also report `Complete` (with
                    // the same matching count), so the status alone would
                    // overcount under load.
                    let before = library.completed();
                    let status = library.on_reply(&reply);
                    if library.completed() > before {
                        if let RequestStatus::Complete { seq, .. } = status {
                            completed += 1;
                            commit_log.push(CommittedTxn {
                                seq,
                                client: reply.client,
                                request: reply.request,
                            });
                        }
                    }
                }
            }
            Err(_) => continue,
        }
    }
    let elapsed = start.elapsed();
    commit_log.sort_unstable();
    ClusterSummary {
        completed_txns: completed,
        throughput_tps: completed as f64 / elapsed.as_secs_f64(),
        elapsed,
        n: config.n,
        dropped_messages: dropped
            .load(Ordering::Relaxed)
            .saturating_sub(dropped_at_start),
        commit_log,
    }
}

/// The threaded runtimes' [`EngineHost`]: transport sends as the network, a
/// per-thread deadline list as the clock. All `Action` translation and timer
/// bookkeeping live in the shared [`Dispatcher`].
struct ThreadEnv<T: Transport> {
    transport: T,
    timers: Vec<(Instant, TimerKind, TimerToken)>,
}

impl<T: Transport> EngineHost for ThreadEnv<T> {
    fn send(&mut self, from: ReplicaId, to: ReplicaId, msg: SharedMessage) {
        self.transport.send_peer(from, to, msg);
    }

    fn broadcast(&mut self, from: ReplicaId, replicas: usize, msg: SharedMessage) {
        self.transport.broadcast_peer(from, replicas, msg);
    }

    fn reply(&mut self, from: ReplicaId, reply: ClientReply) {
        self.transport.send_reply(from, reply);
    }

    fn schedule_timer(
        &mut self,
        _replica: ReplicaId,
        timer: TimerKind,
        delay_us: u64,
        token: TimerToken,
    ) {
        // One pending deadline per timer kind: re-arming replaces the old
        // entry (its token is already stale in the dispatcher anyway).
        self.timers.retain(|(_, t, _)| *t != timer);
        self.timers.push((
            Instant::now() + Duration::from_micros(delay_us),
            timer,
            token,
        ));
    }

    fn timer_cancelled(&mut self, _replica: ReplicaId, timer: TimerKind) {
        self.timers.retain(|(_, t, _)| *t != timer);
    }
}

/// Where a replica's [`CrashWindow`] currently stands.
enum WindowPhase {
    /// Waiting for our own frontier to reach the crash sequence.
    Armed,
    /// Down: all input is discarded, no timers fire.
    Down,
    /// Recovered (or never had a window); normal operation.
    Done,
}

/// One replica's event loop, shared by the channel and TCP deployments.
pub(crate) fn replica_loop<T: Transport>(
    engine: &mut dyn ConsensusEngine,
    rx: Receiver<Input>,
    transport: T,
    tracker: PrimaryTracker,
    chaos: ReplicaChaos,
) {
    let id = engine.id();
    let n = engine.config().n;
    let mut dispatcher = Dispatcher::new(n);
    let mut env = ThreadEnv {
        transport,
        timers: Vec::new(),
    };
    let mut phase = match chaos.window {
        Some(_) => WindowPhase::Armed,
        None => WindowPhase::Done,
    };
    loop {
        // Work out how long we may sleep before the next timer fires.
        let now = Instant::now();
        let next_deadline = env.timers.iter().map(|(at, _, _)| *at).min();
        let wait = next_deadline
            .map(|at| at.saturating_duration_since(now))
            .unwrap_or(Duration::from_millis(5))
            .min(Duration::from_millis(5));

        let down = matches!(phase, WindowPhase::Down);
        match rx.recv_timeout(wait) {
            Ok(Input::Shutdown) => return,
            // A crashed replica hears nothing: peer traffic and client
            // batches are drained and discarded while the window is down.
            Ok(_) if down => {}
            Ok(Input::Peer(from, msg)) => dispatcher.deliver(engine, from, msg, &mut env),
            Ok(Input::Client(txns)) => dispatcher.client_request(engine, txns, &mut env),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
        }

        // Fire any due timers; the dispatcher drops expirations whose token
        // went stale between scheduling and firing.
        let now = Instant::now();
        let due: Vec<(TimerKind, TimerToken)> = env
            .timers
            .iter()
            .filter(|(at, _, _)| *at <= now)
            .map(|(_, t, token)| (*t, *token))
            .collect();
        env.timers.retain(|(at, _, _)| *at > now);
        for (timer, token) in due {
            dispatcher.timer_expired(engine, timer, token, &mut env);
        }

        // Publish our execution frontier so crash windows (and tests) can
        // key on commit progress across threads.
        if let Some(slot) = chaos.frontiers.get(id.as_usize()) {
            slot.store(engine.last_executed().0, Ordering::Relaxed);
        }
        if let Some(window) = chaos.window {
            match phase {
                WindowPhase::Armed if engine.last_executed().0 >= window.crash_at_seq => {
                    // Going down: a crashed host's pending timers die with
                    // it (fresh ones are armed by whatever runs after
                    // recovery).
                    env.timers.clear();
                    phase = WindowPhase::Down;
                }
                WindowPhase::Down => {
                    let others_frontier = chaos
                        .frontiers
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != id.as_usize())
                        .map(|(_, f)| f.load(Ordering::Relaxed))
                        .max()
                        .unwrap_or(0);
                    if others_frontier >= window.recover_at_seq {
                        // Rejoin via state transfer: ask every peer for
                        // the latest stable checkpoint past our frontier.
                        let request = Arc::new(Message::CheckpointRequest {
                            last_executed: engine.last_executed(),
                        });
                        for to in 0..n {
                            if to != id.as_usize() {
                                env.transport.send_peer(
                                    id,
                                    ReplicaId(to as u32),
                                    Arc::clone(&request),
                                );
                            }
                        }
                        phase = WindowPhase::Done;
                    }
                }
                _ => {}
            }
        }

        // Publish our view so submission paths can find the primary.
        tracker.observe(engine.id(), engine.view());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(protocol: ProtocolId, txns: usize) -> ClusterSummary {
        let cluster = Cluster::start(protocol, 1, 10);
        let summary = cluster.run_workload(txns, 4, Duration::from_secs(30));
        cluster.shutdown();
        summary
    }

    #[test]
    fn flexi_bft_commits_real_crypto_workload() {
        let summary = run(ProtocolId::FlexiBft, 100);
        assert_eq!(summary.completed_txns, 100);
        assert!(summary.throughput_tps > 0.0);
        assert_eq!(summary.dropped_messages, 0);
    }

    #[test]
    fn flexi_zz_commits_real_crypto_workload() {
        let summary = run(ProtocolId::FlexiZz, 100);
        assert_eq!(summary.completed_txns, 100);
    }

    #[test]
    fn minbft_commits_real_crypto_workload() {
        let summary = run(ProtocolId::MinBft, 50);
        assert_eq!(summary.completed_txns, 50);
    }

    #[test]
    fn pbft_commits_real_crypto_workload() {
        let summary = run(ProtocolId::Pbft, 50);
        assert_eq!(summary.completed_txns, 50);
    }

    #[test]
    fn full_inboxes_drop_instead_of_deadlocking() {
        // Two replicas with mutually full inboxes used to deadlock on the
        // old blocking `send`; `try_send` must shed the message and count
        // the drop without ever blocking the calling replica thread.
        let (tx, _rx) = bounded::<Input>(1);
        assert!(tx.try_send(Input::Client(Vec::new())).is_ok());
        let (reply_tx, _reply_rx) = bounded::<ClientReply>(1);
        let dropped = Arc::new(AtomicU64::new(0));
        let mut transport = ChannelTransport {
            peers: vec![tx],
            replies: reply_tx,
            dropped: Arc::clone(&dropped),
        };
        let msg = Arc::new(flexitrust_protocol::Message::ClientRetry {
            txn: Transaction::noop(),
        });
        let start = Instant::now();
        transport.send_peer(ReplicaId(1), ReplicaId(0), msg);
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "send must not block"
        );
        assert_eq!(dropped.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn submissions_route_to_the_published_primary() {
        // Build a cluster, then force the tracker's board forward: submit
        // must follow the published view's primary, not replica 0.
        let cluster = Cluster::start(ProtocolId::Pbft, 1, 10);
        assert_eq!(cluster.current_primary(), ReplicaId(0));
        cluster
            .tracker
            .observe(ReplicaId(3), flexitrust_types::View(1));
        assert_eq!(cluster.current_primary(), ReplicaId(1));
        cluster.shutdown();
    }
}
