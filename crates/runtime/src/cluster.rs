//! A threaded cluster: one thread per replica, channels as the network.

use crossbeam::channel::{bounded, Receiver, Sender};
use flexitrust_baselines::{CheapBft, MinBft, MinZz, OpbftEa, Pbft, PbftEa, Zyzzyva};
use flexitrust_core::{FlexiBft, FlexiZz};
use flexitrust_host::{CommittedTxn, Dispatcher, EngineHost, TimerToken};
use flexitrust_protocol::{
    ClientLibrary, ClientReply, ConsensusEngine, Message, RequestStatus, TimerKind,
};
use flexitrust_trusted::{AttestationMode, Enclave, EnclaveConfig, EnclaveRegistry};
use flexitrust_types::{ClientId, ProtocolId, ReplicaId, RequestId, SystemConfig, Transaction};
use std::collections::HashMap;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Messages flowing into a replica thread.
enum Input {
    Peer(ReplicaId, Message),
    Client(Vec<Transaction>),
    Shutdown,
}

/// Summary of a workload run against the cluster.
#[derive(Debug, Clone)]
pub struct ClusterSummary {
    /// Transactions whose reply quorum was reached.
    pub completed_txns: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Observed throughput in transactions per second.
    pub throughput_tps: f64,
    /// Number of replicas in the cluster.
    pub n: usize,
    /// Every completed transaction with the sequence number it executed at,
    /// sorted by sequence; comparable against the simulator's commit log.
    pub commit_log: Vec<CommittedTxn>,
}

/// A running in-process cluster for one protocol.
pub struct Cluster {
    config: SystemConfig,
    inboxes: Vec<Sender<Input>>,
    replies: Receiver<ClientReply>,
    handles: Vec<JoinHandle<()>>,
}

fn build_engine(
    protocol: ProtocolId,
    config: &SystemConfig,
    id: ReplicaId,
    registry: &EnclaveRegistry,
) -> Box<dyn ConsensusEngine> {
    let counter_enclave =
        || Enclave::shared(EnclaveConfig::counter_only(id, AttestationMode::Real));
    let log_enclave = || Enclave::shared(EnclaveConfig::log_based(id, AttestationMode::Real));
    match protocol {
        ProtocolId::Pbft => Box::new(Pbft::engine(config.clone(), id)),
        ProtocolId::Zyzzyva => Box::new(Zyzzyva::engine(config.clone(), id)),
        ProtocolId::PbftEa => Box::new(PbftEa::engine(
            config.clone(),
            id,
            log_enclave(),
            registry.clone(),
        )),
        ProtocolId::OpbftEa => Box::new(OpbftEa::engine(
            config.clone(),
            id,
            log_enclave(),
            registry.clone(),
        )),
        ProtocolId::MinBft => Box::new(MinBft::engine(
            config.clone(),
            id,
            counter_enclave(),
            registry.clone(),
        )),
        ProtocolId::MinZz => Box::new(MinZz::engine(
            config.clone(),
            id,
            counter_enclave(),
            registry.clone(),
        )),
        ProtocolId::CheapBft => Box::new(CheapBft::engine(
            config.clone(),
            id,
            counter_enclave(),
            registry.clone(),
        )),
        ProtocolId::FlexiBft | ProtocolId::OFlexiBft => Box::new(FlexiBft::new(
            config.clone(),
            id,
            counter_enclave(),
            registry.clone(),
        )),
        ProtocolId::FlexiZz | ProtocolId::OFlexiZz => Box::new(FlexiZz::new(
            config.clone(),
            id,
            counter_enclave(),
            registry.clone(),
        )),
    }
}

impl Cluster {
    /// Starts a cluster of `n` replica threads for `protocol` with fault
    /// threshold `f` and the given batch size, using real Ed25519
    /// attestations.
    pub fn start(protocol: ProtocolId, f: usize, batch_size: usize) -> Self {
        let mut config = SystemConfig::for_protocol(protocol, f);
        config.batch_size = batch_size;
        // Keep view-change timers long: the threaded runtime is used for
        // failure-free correctness runs and examples.
        config.view_timeout_us = 30_000_000;
        let registry = EnclaveRegistry::deterministic(config.n, AttestationMode::Real);

        let (reply_tx, reply_rx) = bounded::<ClientReply>(1 << 16);
        let mut inbox_txs = Vec::with_capacity(config.n);
        let mut inbox_rxs = Vec::with_capacity(config.n);
        for _ in 0..config.n {
            let (tx, rx) = bounded::<Input>(1 << 16);
            inbox_txs.push(tx);
            inbox_rxs.push(rx);
        }

        let mut handles = Vec::with_capacity(config.n);
        for (i, rx) in inbox_rxs.into_iter().enumerate() {
            let id = ReplicaId(i as u32);
            let mut engine = build_engine(protocol, &config, id, &registry);
            let peers = inbox_txs.clone();
            let replies = reply_tx.clone();
            handles.push(std::thread::spawn(move || {
                replica_loop(&mut *engine, rx, peers, replies);
            }));
        }

        Cluster {
            config,
            inboxes: inbox_txs,
            replies: reply_rx,
            handles,
        }
    }

    /// The cluster's configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Submits transactions to the primary replica.
    pub fn submit(&self, txns: Vec<Transaction>) {
        let _ = self.inboxes[0].send(Input::Client(txns));
    }

    /// Runs `total_txns` transactions (from `clients` logical clients)
    /// through the cluster and waits until each has reached the protocol's
    /// reply quorum, or until `timeout` expires.
    pub fn run_workload(
        &self,
        total_txns: usize,
        clients: usize,
        timeout: Duration,
    ) -> ClusterSummary {
        let properties_quorum = {
            // The reply rule follows the protocol (Figure 1 column mapping).
            use flexitrust_protocol::ProtocolProperties;
            ProtocolProperties::for_protocol(self.config.protocol).reply_quorum
        };
        let mut libraries: HashMap<u64, ClientLibrary> = (0..clients as u64)
            .map(|c| {
                (
                    c,
                    ClientLibrary::new(ClientId(c), &self.config, properties_quorum),
                )
            })
            .collect();

        let start = Instant::now();
        let mut submitted = Vec::with_capacity(total_txns);
        for i in 0..total_txns {
            let client = ClientId((i % clients) as u64);
            let request = RequestId((i / clients) as u64 + 1);
            let txn = Transaction::new(
                client,
                request,
                flexitrust_types::KvOp::Update {
                    key: i as u64,
                    value: vec![i as u8; 16],
                },
            );
            libraries
                .get_mut(&client.0)
                .expect("library exists")
                .begin(request);
            submitted.push(txn);
        }
        for chunk in submitted.chunks(self.config.batch_size.max(1)) {
            self.submit(chunk.to_vec());
        }

        let mut completed = 0u64;
        let mut commit_log: Vec<CommittedTxn> = Vec::with_capacity(total_txns);
        while completed < total_txns as u64 && start.elapsed() < timeout {
            match self.replies.recv_timeout(Duration::from_millis(50)) {
                Ok(reply) => {
                    if let Some(library) = libraries.get_mut(&reply.client.0) {
                        // Count a request exactly when it first completes;
                        // late duplicate replies also report `Complete` (with
                        // the same matching count), so the status alone would
                        // overcount under load.
                        let before = library.completed();
                        let status = library.on_reply(&reply);
                        if library.completed() > before {
                            if let RequestStatus::Complete { seq, .. } = status {
                                completed += 1;
                                commit_log.push(CommittedTxn {
                                    seq,
                                    client: reply.client,
                                    request: reply.request,
                                });
                            }
                        }
                    }
                }
                Err(_) => continue,
            }
        }
        let elapsed = start.elapsed();
        commit_log.sort_unstable();
        ClusterSummary {
            completed_txns: completed,
            throughput_tps: completed as f64 / elapsed.as_secs_f64(),
            elapsed,
            n: self.config.n,
            commit_log,
        }
    }

    /// Stops every replica thread.
    pub fn shutdown(self) {
        for tx in &self.inboxes {
            let _ = tx.send(Input::Shutdown);
        }
        for handle in self.handles {
            let _ = handle.join();
        }
    }
}

/// The threaded runtime's [`EngineHost`]: channel sends as the network, a
/// per-thread deadline list as the clock. All `Action` translation and timer
/// bookkeeping live in the shared [`Dispatcher`].
struct ThreadEnv {
    peers: Vec<Sender<Input>>,
    replies: Sender<ClientReply>,
    timers: Vec<(Instant, TimerKind, TimerToken)>,
}

impl EngineHost for ThreadEnv {
    fn send(&mut self, from: ReplicaId, to: ReplicaId, msg: Message) {
        let _ = self.peers[to.as_usize()].send(Input::Peer(from, msg));
    }

    fn reply(&mut self, _from: ReplicaId, reply: ClientReply) {
        let _ = self.replies.send(reply);
    }

    fn schedule_timer(
        &mut self,
        _replica: ReplicaId,
        timer: TimerKind,
        delay_us: u64,
        token: TimerToken,
    ) {
        // One pending deadline per timer kind: re-arming replaces the old
        // entry (its token is already stale in the dispatcher anyway).
        self.timers.retain(|(_, t, _)| *t != timer);
        self.timers.push((
            Instant::now() + Duration::from_micros(delay_us),
            timer,
            token,
        ));
    }

    fn timer_cancelled(&mut self, _replica: ReplicaId, timer: TimerKind) {
        self.timers.retain(|(_, t, _)| *t != timer);
    }
}

fn replica_loop(
    engine: &mut dyn ConsensusEngine,
    rx: Receiver<Input>,
    peers: Vec<Sender<Input>>,
    replies: Sender<ClientReply>,
) {
    let mut dispatcher = Dispatcher::new(peers.len());
    let mut env = ThreadEnv {
        peers,
        replies,
        timers: Vec::new(),
    };
    loop {
        // Work out how long we may sleep before the next timer fires.
        let now = Instant::now();
        let next_deadline = env.timers.iter().map(|(at, _, _)| *at).min();
        let wait = next_deadline
            .map(|at| at.saturating_duration_since(now))
            .unwrap_or(Duration::from_millis(5))
            .min(Duration::from_millis(5));

        match rx.recv_timeout(wait) {
            Ok(Input::Peer(from, msg)) => dispatcher.deliver(engine, from, msg, &mut env),
            Ok(Input::Client(txns)) => dispatcher.client_request(engine, txns, &mut env),
            Ok(Input::Shutdown) => return,
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
        }

        // Fire any due timers; the dispatcher drops expirations whose token
        // went stale between scheduling and firing.
        let now = Instant::now();
        let due: Vec<(TimerKind, TimerToken)> = env
            .timers
            .iter()
            .filter(|(at, _, _)| *at <= now)
            .map(|(_, t, token)| (*t, *token))
            .collect();
        env.timers.retain(|(at, _, _)| *at > now);
        for (timer, token) in due {
            dispatcher.timer_expired(engine, timer, token, &mut env);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(protocol: ProtocolId, txns: usize) -> ClusterSummary {
        let cluster = Cluster::start(protocol, 1, 10);
        let summary = cluster.run_workload(txns, 4, Duration::from_secs(30));
        cluster.shutdown();
        summary
    }

    #[test]
    fn flexi_bft_commits_real_crypto_workload() {
        let summary = run(ProtocolId::FlexiBft, 100);
        assert_eq!(summary.completed_txns, 100);
        assert!(summary.throughput_tps > 0.0);
    }

    #[test]
    fn flexi_zz_commits_real_crypto_workload() {
        let summary = run(ProtocolId::FlexiZz, 100);
        assert_eq!(summary.completed_txns, 100);
    }

    #[test]
    fn minbft_commits_real_crypto_workload() {
        let summary = run(ProtocolId::MinBft, 50);
        assert_eq!(summary.completed_txns, 50);
    }

    #[test]
    fn pbft_commits_real_crypto_workload() {
        let summary = run(ProtocolId::Pbft, 50);
        assert_eq!(summary.completed_txns, 50);
    }
}
