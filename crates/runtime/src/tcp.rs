//! The TCP deployment: real message bytes over real loopback sockets.
//!
//! Same engines, same [`flexitrust_host::Dispatcher`], same replica loop as
//! the channel cluster (`crate::cluster`) — only the transport differs.
//! Every replica owns:
//!
//! * a **listener** on an ephemeral loopback port, whose acceptor thread
//!   spawns one reader thread per inbound connection; readers decode
//!   [`flexitrust_wire`] frames and feed the replica's inbox;
//! * one **writer thread per peer** (its own listener included, so
//!   self-addressed broadcast copies cross the loopback like everything
//!   else) and one for the client's reply socket, each owning a connected
//!   `TcpStream` and draining a bounded byte queue.
//!
//! The replica thread itself never touches a socket and never blocks on a
//! full queue: sends go through `try_send` and shed load into the shared
//! drop counter, exactly like the channel transport — a replica stalled on
//! a slow peer must not deadlock the cluster.
//!
//! The client (the workload driver on the main thread) submits transaction
//! batches as [`Frame::Submit`] over a cached connection to the current
//! primary — resolved through the shared [`PrimaryTracker`], not a
//! hard-coded replica 0 — and collects [`Frame::Reply`] frames through a
//! dedicated reply listener every replica connects back to.

use crossbeam::channel::{bounded, Receiver, Sender};
use flexitrust_protocol::{ClientReply, SharedMessage};
use flexitrust_trusted::{AttestationMode, EnclaveRegistry};
use flexitrust_types::{ProtocolId, ReplicaId, SystemConfig, Transaction};
use flexitrust_wire::{read_frame, write_frame, Frame};
use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::cluster::{
    build_engine, cluster_config, drive_workload, replica_loop, ClusterSummary, Input,
    ReplicaChaos, Transport,
};
use crate::primary::PrimaryTracker;

/// Depth of each writer thread's byte queue; overflow is dropped and
/// counted, mirroring the channel transport's inbox bound.
const WRITER_QUEUE: usize = 1 << 16;

/// The socket transport: encodes outbound traffic to wire frames and hands
/// the bytes to the per-destination writer threads. Queues carry
/// `Arc<Vec<u8>>` so a broadcast encodes its frame once and every
/// destination shares the same buffer.
struct SocketTransport {
    /// One queue per peer listener (self included).
    writers: Vec<Sender<Arc<Vec<u8>>>>,
    /// The queue towards the client's reply listener.
    reply_writer: Sender<Arc<Vec<u8>>>,
    dropped: Arc<AtomicU64>,
}

impl SocketTransport {
    fn push(&self, to: usize, bytes: Arc<Vec<u8>>) {
        // An out-of-range destination (a corrupt replica id) is a drop,
        // not a panic: the worker thread must outlive bad input.
        match self.writers.get(to) {
            Some(writer) if writer.try_send(bytes).is_ok() => {}
            _ => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

impl Transport for SocketTransport {
    fn send_peer(&mut self, from: ReplicaId, to: ReplicaId, msg: SharedMessage) {
        let bytes = Arc::new(flexitrust_wire::encode_message(from, &msg));
        self.push(to.as_usize(), bytes);
    }

    fn broadcast_peer(&mut self, from: ReplicaId, replicas: usize, msg: SharedMessage) {
        // One serialisation per broadcast, not per destination: every
        // writer queue shares the same encoded frame.
        let bytes = Arc::new(flexitrust_wire::encode_message(from, &msg));
        for to in 0..replicas {
            self.push(to, Arc::clone(&bytes));
        }
    }

    fn send_reply(&mut self, _from: ReplicaId, reply: ClientReply) {
        let bytes = Arc::new(flexitrust_wire::encode_frame(&Frame::Reply { reply }));
        if self.reply_writer.try_send(bytes).is_err() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A running loopback-TCP cluster for one protocol.
pub struct TcpCluster {
    config: Arc<SystemConfig>,
    addrs: Vec<SocketAddr>,
    control: Vec<Sender<Input>>,
    replies: Receiver<ClientReply>,
    reply_addr: SocketAddr,
    tracker: PrimaryTracker,
    dropped: Arc<AtomicU64>,
    shutdown: Arc<AtomicBool>,
    replica_handles: Vec<JoinHandle<()>>,
    io_handles: Vec<JoinHandle<()>>,
    /// Cached client→replica submission connections, keyed by replica.
    submit_streams: Mutex<HashMap<u32, TcpStream>>,
}

impl TcpCluster {
    /// Starts `n` replica threads for `protocol` with fault threshold `f`
    /// and the given batch size, connected over loopback TCP sockets, using
    /// real Ed25519 attestations.
    pub fn start(protocol: ProtocolId, f: usize, batch_size: usize) -> std::io::Result<Self> {
        Self::start_with_workers(protocol, f, batch_size, 1)
    }

    /// Like [`TcpCluster::start`], with `exec_workers` execution-layer
    /// shard workers per replica (1 = serial). Commit sequences and state
    /// digests are identical for every worker count.
    pub fn start_with_workers(
        protocol: ProtocolId,
        f: usize,
        batch_size: usize,
        exec_workers: usize,
    ) -> std::io::Result<Self> {
        let config =
            Arc::new(cluster_config(protocol, f, batch_size).with_exec_workers(exec_workers));
        let registry = EnclaveRegistry::deterministic(config.n, AttestationMode::Real);
        let tracker = PrimaryTracker::new(config.n);
        let dropped = Arc::new(AtomicU64::new(0));
        let shutdown = Arc::new(AtomicBool::new(false));

        // Bind every listener before any thread connects anywhere: a
        // connect against a bound-but-not-yet-accepting listener parks in
        // the kernel backlog instead of failing.
        let listeners: Vec<TcpListener> = (0..config.n)
            .map(|_| TcpListener::bind("127.0.0.1:0"))
            .collect::<std::io::Result<_>>()?;
        let addrs: Vec<SocketAddr> = listeners
            .iter()
            .map(TcpListener::local_addr)
            .collect::<std::io::Result<_>>()?;
        let reply_listener = TcpListener::bind("127.0.0.1:0")?;
        let reply_addr = reply_listener.local_addr()?;

        let (reply_tx, reply_rx) = bounded::<ClientReply>(1 << 16);
        let mut control = Vec::with_capacity(config.n);
        let mut replica_handles = Vec::with_capacity(config.n);
        let mut io_handles = Vec::new();

        // The client-side reply ingestion: accept one connection per
        // replica, decode reply frames, feed the shared reply channel.
        let reply_dropped = Arc::clone(&dropped);
        io_handles.push(spawn_acceptor(
            reply_listener,
            Arc::clone(&shutdown),
            move |stream| {
                let reply_tx = reply_tx.clone();
                let dropped = Arc::clone(&reply_dropped);
                std::thread::spawn(move || {
                    let mut stream = stream;
                    loop {
                        match read_frame(&mut stream) {
                            Ok(Some(Frame::Reply { reply })) => {
                                if reply_tx.send(reply).is_err() {
                                    return;
                                }
                            }
                            Ok(Some(_)) => {}
                            Ok(None) => return,
                            Err(_) => {
                                // A torn or malformed frame severs the
                                // connection; count it so a codec
                                // regression shows up as drops, not as an
                                // undiagnosed workload timeout.
                                dropped.fetch_add(1, Ordering::Relaxed);
                                return;
                            }
                        }
                    }
                });
            },
        ));

        for (i, listener) in listeners.into_iter().enumerate() {
            // lint:allow(T02): i is a local loop index over n listeners, not peer bytes; n is far below u32::MAX
            let id = ReplicaId(i as u32);
            let (inbox_tx, inbox_rx) = bounded::<Input>(1 << 16);
            control.push(inbox_tx.clone());

            // Inbound: acceptor + per-connection readers feeding the inbox.
            let reader_dropped = Arc::clone(&dropped);
            io_handles.push(spawn_acceptor(
                listener,
                Arc::clone(&shutdown),
                move |stream| {
                    let inbox = inbox_tx.clone();
                    let dropped = Arc::clone(&reader_dropped);
                    std::thread::spawn(move || {
                        let mut stream = stream;
                        loop {
                            let frame = match read_frame(&mut stream) {
                                Ok(Some(frame)) => frame,
                                Ok(None) => return,
                                Err(_) => {
                                    // A torn or malformed frame severs the
                                    // connection; count it so a codec
                                    // regression shows up as drops, not as
                                    // an undiagnosed workload timeout.
                                    dropped.fetch_add(1, Ordering::Relaxed);
                                    return;
                                }
                            };
                            // Blocking sends: a full inbox exerts TCP
                            // backpressure on the sender instead of
                            // dropping on the receive side.
                            let delivered = match frame {
                                Frame::Peer { from, msg } => {
                                    inbox.send(Input::Peer(from, Arc::new(msg))).is_ok()
                                }
                                Frame::Submit { txns } => inbox.send(Input::Client(txns)).is_ok(),
                                Frame::Reply { .. } => true,
                            };
                            if !delivered {
                                return;
                            }
                        }
                    });
                },
            ));

            // Outbound: one writer thread per destination listener.
            let mut writers = Vec::with_capacity(config.n);
            for &peer_addr in &addrs {
                let (wtx, wrx) = bounded::<Arc<Vec<u8>>>(WRITER_QUEUE);
                writers.push(wtx);
                io_handles.push(spawn_writer(peer_addr, wrx, Arc::clone(&dropped)));
            }
            let (reply_wtx, reply_wrx) = bounded::<Arc<Vec<u8>>>(WRITER_QUEUE);
            io_handles.push(spawn_writer(reply_addr, reply_wrx, Arc::clone(&dropped)));

            let transport = SocketTransport {
                writers,
                reply_writer: reply_wtx,
                dropped: Arc::clone(&dropped),
            };
            let mut engine = build_engine(protocol, &config, id, &registry);
            let thread_tracker = tracker.clone();
            let chaos = ReplicaChaos::inert(config.n);
            replica_handles.push(std::thread::spawn(move || {
                replica_loop(&mut *engine, inbox_rx, transport, thread_tracker, chaos);
            }));
        }

        Ok(TcpCluster {
            config,
            addrs,
            control,
            replies: reply_rx,
            reply_addr,
            tracker,
            dropped,
            shutdown,
            replica_handles,
            io_handles,
            submit_streams: Mutex::new(HashMap::new()),
        })
    }

    /// The cluster's configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The replica currently believed to lead (the primary of the most
    /// advanced view any replica has published).
    pub fn current_primary(&self) -> ReplicaId {
        self.tracker.current_primary()
    }

    /// Submits a batch of transactions over TCP to the current primary.
    ///
    /// Locally detectable failures (refused connect, failed write) are
    /// retried once on a fresh connection and then counted as a drop — a
    /// lost submission surfaces in `ClusterSummary::dropped_messages`
    /// instead of silently starving the workload. A write into a socket
    /// the peer has already closed can still succeed locally (the bytes
    /// die in the OS buffer); as on any real network, only the client's
    /// own timeout-and-retransmit recovers that.
    pub fn submit(&self, txns: Vec<Transaction>) {
        use std::collections::hash_map::Entry;
        let primary = self.tracker.current_primary();
        let frame = Frame::Submit { txns };
        // A poisoned lock means a previous submit panicked mid-write; the
        // stream cache is still structurally valid (worst case a dead
        // stream, which the write-retry below already replaces), so
        // recover it rather than cascade the panic into the driver.
        let mut streams = self
            .submit_streams
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for _ in 0..2 {
            let stream = match streams.entry(primary.0) {
                Entry::Occupied(entry) => entry.into_mut(),
                Entry::Vacant(entry) => {
                    // A primary id outside the address table (view number
                    // corruption) retries and then counts as a drop.
                    let Some(addr) = self.addrs.get(primary.as_usize()) else {
                        continue;
                    };
                    match TcpStream::connect(addr) {
                        Ok(stream) => entry.insert(stream),
                        Err(_) => continue,
                    }
                }
            };
            if write_frame(stream, &frame).is_ok() {
                return;
            }
            streams.remove(&primary.0);
        }
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Runs `total_txns` transactions (from `clients` logical clients)
    /// through the cluster and waits until each has reached the protocol's
    /// reply quorum, or until `timeout` expires.
    pub fn run_workload(
        &self,
        total_txns: usize,
        clients: usize,
        timeout: Duration,
    ) -> ClusterSummary {
        drive_workload(
            &self.config,
            |txns| self.submit(txns),
            &self.replies,
            &self.dropped,
            total_txns,
            clients,
            timeout,
        )
    }

    /// Stops every replica, writer and acceptor thread.
    pub fn shutdown(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for tx in &self.control {
            let _ = tx.send(Input::Shutdown);
        }
        // Replica threads exit, dropping their transports; writer queues
        // disconnect, writer threads close their streams, and the peer
        // readers on the other end see EOF.
        for handle in self.replica_handles {
            let _ = handle.join();
        }
        drop(self.submit_streams);
        // Unblock every acceptor parked in accept() so it can observe the
        // shutdown flag.
        for addr in self.addrs.iter().chain(std::iter::once(&self.reply_addr)) {
            let _ = TcpStream::connect(addr);
        }
        for handle in self.io_handles {
            let _ = handle.join();
        }
    }
}

/// Spawns the accept loop of `listener`: hands every inbound connection to
/// `on_conn` until the shutdown flag is raised. Transient accept errors
/// (ECONNABORTED, fd pressure) are skipped — one aborted handshake must
/// not retire the listener and strand the replica for the rest of the run.
fn spawn_acceptor(
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
    on_conn: impl Fn(TcpStream) + Send + 'static,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            if let Ok(stream) = stream {
                let _ = stream.set_nodelay(true);
                on_conn(stream);
            }
        }
    })
}

/// Spawns a writer thread: connects to `addr` and drains `queue` onto the
/// socket until the queue disconnects or the socket dies. Frames that
/// cannot reach the wire are *counted*: a failed connect or a dead socket
/// tallies every frame still in (or later pushed into) the queue as a
/// drop until the queue disconnects, and once the thread exits the
/// dropped receiver makes every subsequent `try_send` fail into the same
/// counter — traffic to an unreachable peer must show up as counted
/// drops, never drain silently into the void.
fn spawn_writer(
    addr: SocketAddr,
    queue: Receiver<Arc<Vec<u8>>>,
    dropped: Arc<AtomicU64>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let count_drain = |queue: &Receiver<Arc<Vec<u8>>>| {
            while queue.recv().is_ok() {
                dropped.fetch_add(1, Ordering::Relaxed);
            }
        };
        let Ok(mut stream) = TcpStream::connect(addr) else {
            count_drain(&queue);
            return;
        };
        let _ = stream.set_nodelay(true);
        while let Ok(bytes) = queue.recv() {
            if stream.write_all(&bytes).is_err() {
                dropped.fetch_add(1, Ordering::Relaxed);
                count_drain(&queue);
                return;
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flexi_bft_commits_over_loopback_sockets() {
        let cluster = TcpCluster::start(ProtocolId::FlexiBft, 1, 10).expect("cluster starts");
        let summary = cluster.run_workload(100, 4, Duration::from_secs(60));
        cluster.shutdown();
        assert_eq!(summary.completed_txns, 100);
        assert!(summary.throughput_tps > 0.0);
    }

    #[test]
    fn pbft_commits_over_loopback_sockets() {
        let cluster = TcpCluster::start(ProtocolId::Pbft, 1, 10).expect("cluster starts");
        let summary = cluster.run_workload(50, 4, Duration::from_secs(60));
        cluster.shutdown();
        assert_eq!(summary.completed_txns, 50);
    }
}
