//! The cluster-wide current-primary accessor.
//!
//! Replica threads own their engines, so the submitting client (the main
//! thread) cannot ask an engine which view it is in. Instead every replica
//! publishes its view into this shared tracker after each batch of work,
//! and submission paths — the channel cluster's `submit` and the TCP
//! host's socket client alike — route to the primary of the most advanced
//! published view instead of hard-coding replica 0 (the same bug class as
//! the hard-coded replica-0 client RTT fixed in an earlier revision of the
//! simulator).

use flexitrust_types::{ReplicaId, View};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, lock-free view board: one slot per replica.
#[derive(Clone, Debug)]
pub struct PrimaryTracker {
    views: Arc<Vec<AtomicU64>>,
}

impl PrimaryTracker {
    /// A tracker for `n` replicas, all starting in view 0.
    pub fn new(n: usize) -> Self {
        PrimaryTracker {
            views: Arc::new((0..n).map(|_| AtomicU64::new(0)).collect()),
        }
    }

    /// Number of replicas tracked.
    pub fn replicas(&self) -> usize {
        self.views.len()
    }

    /// Publishes `replica`'s current view. Views only move forward; a stale
    /// publish never rolls the board back.
    pub fn observe(&self, replica: ReplicaId, view: View) {
        if let Some(slot) = self.views.get(replica.as_usize()) {
            slot.fetch_max(view.0, Ordering::Relaxed);
        }
    }

    /// The most advanced view any replica has published.
    pub fn current_view(&self) -> View {
        View(
            self.views
                .iter()
                .map(|v| v.load(Ordering::Relaxed))
                .max()
                .unwrap_or(0),
        )
    }

    /// The primary of [`Self::current_view`] — where new client
    /// transactions should be submitted.
    pub fn current_primary(&self) -> ReplicaId {
        self.current_view().primary(self.replicas().max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_the_most_advanced_view() {
        let tracker = PrimaryTracker::new(4);
        assert_eq!(tracker.current_primary(), ReplicaId(0));
        tracker.observe(ReplicaId(2), View(1));
        assert_eq!(tracker.current_view(), View(1));
        assert_eq!(tracker.current_primary(), ReplicaId(1));
        // Stale observations never roll the board back.
        tracker.observe(ReplicaId(2), View(0));
        assert_eq!(tracker.current_view(), View(1));
        // Views wrap around the replica set.
        tracker.observe(ReplicaId(0), View(6));
        assert_eq!(tracker.current_primary(), ReplicaId(2));
    }

    #[test]
    fn clones_share_one_board() {
        let tracker = PrimaryTracker::new(4);
        let clone = tracker.clone();
        clone.observe(ReplicaId(1), View(3));
        assert_eq!(tracker.current_view(), View(3));
    }
}
