//! Real in-process deployment of the consensus engines.
//!
//! While `flexitrust-sim` models time to reproduce the paper's performance
//! figures, this crate actually *runs* the protocols: one OS thread per
//! replica, crossbeam channels as the (reliable, authenticated) network,
//! real Ed25519 attestations from the software enclaves, and a real client
//! that collects replies through the protocol's reply quorum. It exists to
//! validate end-to-end correctness of the engines at small scale (n = 4…13)
//! and to power the runnable examples.

pub mod cluster;

pub use cluster::{Cluster, ClusterSummary};
