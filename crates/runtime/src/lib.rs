//! Real in-process deployment of the consensus engines.
//!
//! While `flexitrust-sim` models time to reproduce the paper's performance
//! figures, this crate actually *runs* the protocols, in two flavours that
//! share one replica loop and workload driver:
//!
//! * [`Cluster`] — one OS thread per replica, crossbeam channels as the
//!   network;
//! * [`TcpCluster`] — the same replicas connected over loopback TCP
//!   sockets, every message crossing the wire as the canonical
//!   `flexitrust-wire` frame bytes the simulator's bandwidth model charges.
//!
//! Both networks are in-order but deliberately *lossy at the edges*:
//! cross-replica sends use non-blocking `try_send` and shed load into
//! `ClusterSummary::dropped_messages` when a queue fills — BFT protocols
//! tolerate loss, and the alternative (blocking sends between replicas
//! with mutually full inboxes) deadlocks the cluster. A nonzero drop count
//! is designed load-shedding, not a transport bug.
//!
//! Both use real Ed25519 attestations from the software enclaves and a real
//! client that collects replies through the protocol's reply quorum. They
//! exist to validate end-to-end correctness of the engines at small scale
//! (n = 4…13), to pin cross-host equivalence against the simulator, and to
//! power the runnable examples.

pub mod cluster;
pub mod primary;
pub mod tcp;

pub use cluster::{Cluster, ClusterSummary, CrashWindow};
pub use primary::PrimaryTracker;
pub use tcp::TcpCluster;
