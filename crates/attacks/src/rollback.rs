//! The §6 rollback attack on trusted-component state.
//!
//! A Byzantine primary whose enclave is not rollback-protected (plain SGX
//! enclave counters) snapshots the enclave state, gets an attestation for
//! transaction `T` at sequence number 1, shows it to one half of the honest
//! replicas, restores the snapshot, gets an equally valid attestation for a
//! different transaction `T'` at the *same* sequence number, and shows that
//! to the other half. In MinBFT (`n = 2f + 1`, quorums of `f + 1`) both
//! halves commit and execute, so two honest replicas execute different
//! transactions at the same sequence number — a safety violation. In
//! Flexi-BFT the same rollback produces the same pair of attestations, but a
//! commit needs `2f + 1` of `3f + 1` replicas, and two such quorums always
//! share an honest replica that accepts only one proposal per slot — so at
//! most one of the conflicting transactions can ever commit.

use flexitrust_core::FlexiBft;
use flexitrust_crypto::make_batch;
use flexitrust_protocol::{ConsensusEngine, Message, Outbox};
use flexitrust_trusted::{
    Attestation, AttestationMode, Enclave, EnclaveConfig, EnclaveRegistry, TrustedHardware,
};
use flexitrust_types::{
    Batch, ClientId, Digest, KvOp, ProtocolId, ReplicaId, RequestId, SeqNum, SystemConfig,
    Transaction, View,
};

/// Outcome of the rollback attack against one protocol.
#[derive(Debug, Clone)]
pub struct RollbackReport {
    /// The protocol that was attacked.
    pub protocol: ProtocolId,
    /// Whether the enclave allowed the rollback (hardware dependent).
    pub rollback_succeeded: bool,
    /// The sequence number both conflicting proposals were bound to.
    pub seq: SeqNum,
    /// Digests of the two conflicting proposals.
    pub digests: (Digest, Digest),
    /// How many honest replicas executed the first proposal.
    pub executed_t: usize,
    /// How many honest replicas executed the conflicting proposal.
    pub executed_t_prime: usize,
    /// Whether the two conflicting proposals both gathered enough support to
    /// *commit* (execute as final) at honest replicas.
    pub safety_violated: bool,
}

fn txn(tag: u64) -> Transaction {
    Transaction::new(
        ClientId(9),
        RequestId(tag),
        KvOp::Update {
            key: tag,
            value: vec![tag as u8].into(),
        },
    )
}

/// Builds the two conflicting attested proposals by rolling back the
/// primary's enclave between them. Returns `None` if the hardware refused
/// the rollback.
fn equivocating_proposals(
    hardware: TrustedHardware,
) -> Option<(Batch, Attestation, Batch, Attestation)> {
    let primary_enclave = Enclave::shared(
        EnclaveConfig::counter_only(ReplicaId(0), AttestationMode::Real).with_hardware(hardware),
    );
    let control = primary_enclave.rollback_control();
    let snapshot = control.snapshot();

    let batch_t = make_batch(vec![txn(1)]);
    let (seq_t, att_t) = primary_enclave
        .append_f(0, batch_t.digest())
        .expect("fresh counter accepts the first append");

    if control.restore(&snapshot).is_err() {
        return None;
    }

    let batch_t_prime = make_batch(vec![txn(2)]);
    let (seq_t_prime, att_t_prime) = primary_enclave
        .append_f(0, batch_t_prime.digest())
        .expect("rolled-back counter accepts the conflicting append");
    assert_eq!(seq_t, seq_t_prime, "both proposals bind to the same slot");
    Some((batch_t, att_t, batch_t_prime, att_t_prime))
}

/// Runs the rollback attack against MinBFT with fault threshold `f`.
///
/// The primary shows `T` to itself plus the first `f` backups and `T'` to
/// the remaining `f` backups; with `f + 1` prepare quorums both halves
/// commit, violating safety (unless the hardware is rollback-protected, in
/// which case the attack dies at the restore step).
pub fn rollback_attack_minbft(f: usize, hardware: TrustedHardware) -> RollbackReport {
    use flexitrust_baselines::MinBft;
    let mut config = MinBft::config(f);
    config.batch_size = 1;
    let registry = EnclaveRegistry::deterministic(config.n, AttestationMode::Real);

    let Some((batch_t, att_t, batch_tp, att_tp)) = equivocating_proposals(hardware) else {
        return RollbackReport {
            protocol: ProtocolId::MinBft,
            rollback_succeeded: false,
            seq: SeqNum(1),
            digests: (Digest::ZERO, Digest::ZERO),
            executed_t: 0,
            executed_t_prime: 0,
            safety_violated: false,
        };
    };

    // Honest backups 1..n; the Byzantine primary is replica 0.
    let mut backups: Vec<_> = (1..config.n)
        .map(|i| {
            MinBft::engine(
                config.clone(),
                ReplicaId(i as u32),
                MinBft::enclave(ReplicaId(i as u32), AttestationMode::Real),
                registry.clone(),
            )
        })
        .collect();

    // Group A (first f backups) sees T; group B (last f backups) sees T'.
    let preprepare = |batch: &Batch, att: &Attestation| Message::PrePrepare {
        view: View(0),
        seq: SeqNum(1),
        batch: batch.clone(),
        attestation: Some(att.clone()),
    };
    let mut prepares_a = Vec::new();
    let mut prepares_b = Vec::new();
    for (i, backup) in backups.iter_mut().enumerate() {
        let mut out = Outbox::new();
        let group_a = i < f;
        let msg = if group_a {
            preprepare(&batch_t, &att_t)
        } else {
            preprepare(&batch_tp, &att_tp)
        };
        backup.on_message(ReplicaId(0), msg, &mut out);
        for m in out.broadcasts() {
            if m.kind() == "Prepare" {
                if group_a {
                    prepares_a.push((backup.id(), m.clone()));
                } else {
                    prepares_b.push((backup.id(), m.clone()));
                }
            }
        }
    }
    // The Byzantine primary contributes its own (validly attested) Prepare to
    // each group, completing the f + 1 quorums.
    prepares_a.push((
        ReplicaId(0),
        Message::Prepare {
            view: View(0),
            seq: SeqNum(1),
            digest: batch_t.digest(),
            attestation: Some(att_t.clone()),
        },
    ));
    prepares_b.push((
        ReplicaId(0),
        Message::Prepare {
            view: View(0),
            seq: SeqNum(1),
            digest: batch_tp.digest(),
            attestation: Some(att_tp.clone()),
        },
    ));
    // Deliver each group's prepares within the group only (the adversary
    // schedules messages, §6).
    let mut executed_t = 0;
    let mut executed_tp = 0;
    for (i, backup) in backups.iter_mut().enumerate() {
        let group = if i < f { &prepares_a } else { &prepares_b };
        for (from, msg) in group {
            let mut out = Outbox::new();
            backup.on_message(*from, msg.clone(), &mut out);
        }
        if backup.last_executed() >= SeqNum(1) {
            if i < f {
                executed_t += 1;
            } else {
                executed_tp += 1;
            }
        }
    }

    RollbackReport {
        protocol: ProtocolId::MinBft,
        rollback_succeeded: true,
        seq: SeqNum(1),
        digests: (batch_t.digest(), batch_tp.digest()),
        executed_t,
        executed_t_prime: executed_tp,
        safety_violated: executed_t > 0 && executed_tp > 0,
    }
}

/// Runs the same rollback attack against Flexi-BFT with fault threshold `f`.
///
/// The conflicting attestations exist just the same, but no split of the
/// `3f` honest backups gives both proposals a `2f + 1` commit quorum, so at
/// most one of them can execute at honest replicas.
pub fn rollback_attack_flexibft(f: usize, hardware: TrustedHardware) -> RollbackReport {
    let mut config = SystemConfig::for_protocol(ProtocolId::FlexiBft, f);
    config.batch_size = 1;
    let registry = EnclaveRegistry::deterministic(config.n, AttestationMode::Real);

    let Some((batch_t, att_t, batch_tp, att_tp)) = equivocating_proposals(hardware) else {
        return RollbackReport {
            protocol: ProtocolId::FlexiBft,
            rollback_succeeded: false,
            seq: SeqNum(1),
            digests: (Digest::ZERO, Digest::ZERO),
            executed_t: 0,
            executed_t_prime: 0,
            safety_violated: false,
        };
    };

    let mut backups: Vec<FlexiBft> = (1..config.n)
        .map(|i| {
            FlexiBft::new(
                config.clone(),
                ReplicaId(i as u32),
                FlexiBft::enclave(ReplicaId(i as u32), AttestationMode::Real),
                registry.clone(),
            )
        })
        .collect();

    // The adversary splits the 3f honest backups as favourably as it can:
    // half see T, half see T'.
    let split = backups.len() / 2;
    let mut prepares_a = Vec::new();
    let mut prepares_b = Vec::new();
    for (i, backup) in backups.iter_mut().enumerate() {
        let mut out = Outbox::new();
        let (batch, att) = if i < split {
            (&batch_t, &att_t)
        } else {
            (&batch_tp, &att_tp)
        };
        backup.on_message(
            ReplicaId(0),
            Message::PrePrepare {
                view: View(0),
                seq: SeqNum(1),
                batch: batch.clone(),
                attestation: Some(att.clone()),
            },
            &mut out,
        );
        for m in out.broadcasts() {
            if m.kind() == "Prepare" {
                if i < split {
                    prepares_a.push((backup.id(), m.clone()));
                } else {
                    prepares_b.push((backup.id(), m.clone()));
                }
            }
        }
    }
    // The Byzantine primary votes for both.
    prepares_a.push((
        ReplicaId(0),
        Message::Prepare {
            view: View(0),
            seq: SeqNum(1),
            digest: batch_t.digest(),
            attestation: None,
        },
    ));
    prepares_b.push((
        ReplicaId(0),
        Message::Prepare {
            view: View(0),
            seq: SeqNum(1),
            digest: batch_tp.digest(),
            attestation: None,
        },
    ));

    let mut executed_t = 0;
    let mut executed_tp = 0;
    for (i, backup) in backups.iter_mut().enumerate() {
        let group = if i < split { &prepares_a } else { &prepares_b };
        for (from, msg) in group {
            let mut out = Outbox::new();
            backup.on_message(*from, msg.clone(), &mut out);
        }
        if backup.last_executed() >= SeqNum(1) {
            if i < split {
                executed_t += 1;
            } else {
                executed_tp += 1;
            }
        }
    }

    RollbackReport {
        protocol: ProtocolId::FlexiBft,
        rollback_succeeded: true,
        seq: SeqNum(1),
        digests: (batch_t.digest(), batch_tp.digest()),
        executed_t,
        executed_t_prime: executed_tp,
        safety_violated: executed_t > 0 && executed_tp > 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minbft_loses_safety_on_rollbackable_hardware() {
        let report = rollback_attack_minbft(2, TrustedHardware::default_enclave());
        assert!(report.rollback_succeeded);
        assert_ne!(report.digests.0, report.digests.1);
        assert!(report.executed_t >= 1);
        assert!(report.executed_t_prime >= 1);
        assert!(report.safety_violated);
    }

    #[test]
    fn minbft_is_safe_on_rollback_protected_hardware() {
        let report = rollback_attack_minbft(2, TrustedHardware::typical_tpm());
        assert!(!report.rollback_succeeded);
        assert!(!report.safety_violated);
    }

    #[test]
    fn flexi_bft_survives_the_same_rollback() {
        let report = rollback_attack_flexibft(2, TrustedHardware::default_enclave());
        // The attestations equivocate just the same...
        assert!(report.rollback_succeeded);
        assert_ne!(report.digests.0, report.digests.1);
        // ...but no conflicting pair can both commit.
        assert!(!report.safety_violated, "{report:?}");
        assert_eq!(report.executed_t, 0);
        assert_eq!(report.executed_t_prime, 0);
    }
}
