//! A small synchronous harness that drives a set of engines under an
//! adversarial delivery plan and records what each client would observe.
//!
//! The harness is the third host of the shared engine-hosting layer: like
//! the simulator and the threaded runtime it drives engines through
//! [`flexitrust_host::Dispatcher`], implementing only its environment
//! primitives — routing messages through the adversary's [`FaultPlan`] into
//! per-replica queues and recording client-visible observations.

use flexitrust_host::{Dispatcher, EngineHost, TimerToken};
use flexitrust_protocol::{ClientReply, ConsensusEngine, SharedMessage, TimerKind};
use flexitrust_sim::{DeliveryFate, FaultPlan};
use flexitrust_types::{ReplicaId, Transaction};
use std::sync::Arc;

/// Everything observed while driving the cluster.
#[derive(Debug, Default)]
pub struct Observations {
    /// Replies emitted towards clients, tagged with the sending replica.
    pub replies: Vec<ClientReply>,
    /// Messages that the fault plan dropped.
    pub dropped_messages: u64,
    /// Messages that were delivered.
    pub delivered_messages: u64,
    /// View-change messages observed on the wire (even if dropped).
    pub view_change_votes: u64,
}

/// The harness's [`EngineHost`]: the adversary's network. Sends are routed
/// through the fault plan into prompt or delayed queues (or dropped); the
/// synchronous harness has no clock, so timers are never scheduled — the
/// driver fires them explicitly to model client complaints.
struct RecordingEnv<'a> {
    faults: &'a FaultPlan,
    queues: Vec<Vec<(ReplicaId, SharedMessage)>>,
    delayed: Vec<Vec<(ReplicaId, SharedMessage)>>,
    obs: Observations,
}

impl RecordingEnv<'_> {
    fn route(&mut self, from: ReplicaId, to: ReplicaId, msg: SharedMessage) {
        match self.faults.fate(from, to, &msg) {
            DeliveryFate::Deliver => self.queues[to.as_usize()].push((from, msg)),
            DeliveryFate::Delay(_) => self.delayed[to.as_usize()].push((from, msg)),
            DeliveryFate::Drop => self.obs.dropped_messages += 1,
        }
    }
}

impl EngineHost for RecordingEnv<'_> {
    fn send(&mut self, from: ReplicaId, to: ReplicaId, msg: SharedMessage) {
        if msg.kind() == "ViewChange" {
            self.obs.view_change_votes += 1;
        }
        self.route(from, to, msg);
    }

    fn broadcast(&mut self, from: ReplicaId, replicas: usize, msg: SharedMessage) {
        // A broadcast counts as one vote on the wire regardless of fan-out,
        // which is why the harness overrides the default per-destination
        // expansion. Each queued copy shares the sender's allocation.
        if msg.kind() == "ViewChange" {
            self.obs.view_change_votes += 1;
        }
        for to in 0..replicas {
            self.route(from, ReplicaId(to as u32), Arc::clone(&msg));
        }
    }

    fn reply(&mut self, _from: ReplicaId, reply: ClientReply) {
        self.obs.replies.push(reply);
    }

    fn schedule_timer(
        &mut self,
        _replica: ReplicaId,
        _timer: TimerKind,
        _delay_us: u64,
        _token: TimerToken,
    ) {
        // No clock: the driver fires timers explicitly via `fire_timers`.
    }
}

/// Drives `engines` until quiescence, delivering messages according to
/// `faults` (delayed messages are treated as arriving after everything else;
/// dropped messages never arrive). Client requests in `inject` are handed to
/// the listed replica first; `fire_timers` lists replicas whose view-change
/// timer is fired once after the network quiesces (modelling the client
/// complaint / timeout path).
pub fn drive(
    engines: &mut [Box<dyn ConsensusEngine>],
    faults: &FaultPlan,
    inject: Vec<(usize, Vec<Transaction>)>,
    fire_timers: &[usize],
    max_rounds: usize,
) -> Observations {
    let n = engines.len();
    let mut dispatcher = Dispatcher::new(n);
    let mut env = RecordingEnv {
        faults,
        queues: vec![Vec::new(); n],
        delayed: vec![Vec::new(); n],
        obs: Observations::default(),
    };

    for (target, txns) in inject {
        dispatcher.client_request(&mut *engines[target], txns, &mut env);
    }

    let drain = |engines: &mut [Box<dyn ConsensusEngine>],
                 dispatcher: &mut Dispatcher,
                 env: &mut RecordingEnv| {
        for _ in 0..max_rounds {
            let mut any = false;
            for (i, engine) in engines.iter_mut().enumerate() {
                if faults.is_failed(ReplicaId(i as u32)) {
                    env.queues[i].clear();
                    continue;
                }
                for (from, msg) in std::mem::take(&mut env.queues[i]) {
                    any = true;
                    env.obs.delivered_messages += 1;
                    dispatcher.deliver(&mut **engine, from, msg, env);
                }
            }
            if !any {
                break;
            }
        }
    };

    // Phase 1: prompt delivery of everything the adversary lets through.
    drain(engines, &mut dispatcher, &mut env);

    // Phase 2: the client complains / timers fire at the chosen replicas.
    for idx in fire_timers {
        dispatcher.fire_timer(&mut *engines[*idx], TimerKind::ViewChange, &mut env);
    }
    drain(engines, &mut dispatcher, &mut env);

    // Phase 3: partial synchrony — the delayed messages finally arrive.
    for i in 0..n {
        let delayed = std::mem::take(&mut env.delayed[i]);
        env.queues[i].extend(delayed);
    }
    drain(engines, &mut dispatcher, &mut env);

    env.obs
}

/// Counts, per request, how many **distinct** replicas replied with a
/// matching (sequence number, speculative-or-not) answer; returns the
/// maximum across result variants — i.e. the best the client could do.
pub fn max_matching_replies(obs: &Observations) -> usize {
    use std::collections::{BTreeSet, HashMap};
    let mut per_result: HashMap<(u64, u64, u64), BTreeSet<ReplicaId>> = HashMap::new();
    for reply in &obs.replies {
        per_result
            .entry((reply.client.0, reply.request.0, reply.seq.0))
            .or_default()
            .insert(reply.replica);
    }
    per_result.values().map(BTreeSet::len).max().unwrap_or(0)
}
