//! A small synchronous harness that drives a set of engines under an
//! adversarial delivery plan and records what each client would observe.

use flexitrust_protocol::{Action, ClientReply, ConsensusEngine, Message, Outbox, TimerKind};
use flexitrust_sim::{DeliveryFate, FaultPlan};
use flexitrust_types::{ReplicaId, Transaction};

/// Everything observed while driving the cluster.
#[derive(Debug, Default)]
pub struct Observations {
    /// Replies emitted towards clients, tagged with the sending replica.
    pub replies: Vec<ClientReply>,
    /// Messages that the fault plan dropped.
    pub dropped_messages: u64,
    /// Messages that were delivered.
    pub delivered_messages: u64,
    /// View-change messages observed on the wire (even if dropped).
    pub view_change_votes: u64,
}

/// Drives `engines` until quiescence, delivering messages according to
/// `faults` (delayed messages are treated as arriving after everything else;
/// dropped messages never arrive). Client requests in `inject` are handed to
/// the listed replica first; `fire_timers` lists replicas whose view-change
/// timer is fired once after the network quiesces (modelling the client
/// complaint / timeout path).
pub fn drive(
    engines: &mut [Box<dyn ConsensusEngine>],
    faults: &FaultPlan,
    inject: Vec<(usize, Vec<Transaction>)>,
    fire_timers: &[usize],
    max_rounds: usize,
) -> Observations {
    let n = engines.len();
    let mut obs = Observations::default();
    let mut queues: Vec<Vec<(ReplicaId, Message)>> = vec![Vec::new(); n];
    let mut delayed: Vec<Vec<(ReplicaId, Message)>> = vec![Vec::new(); n];

    let mut route = |from: ReplicaId,
                     actions: Vec<Action>,
                     queues: &mut Vec<Vec<(ReplicaId, Message)>>,
                     delayed: &mut Vec<Vec<(ReplicaId, Message)>>,
                     obs: &mut Observations| {
        for action in actions {
            match action {
                Action::Send { to, msg } => {
                    if msg.kind() == "ViewChange" {
                        obs.view_change_votes += 1;
                    }
                    match faults.fate(from, to, &msg) {
                        DeliveryFate::Deliver => queues[to.as_usize()].push((from, msg)),
                        DeliveryFate::Delay(_) => delayed[to.as_usize()].push((from, msg)),
                        DeliveryFate::Drop => obs.dropped_messages += 1,
                    }
                }
                Action::Broadcast { msg } => {
                    if msg.kind() == "ViewChange" {
                        obs.view_change_votes += 1;
                    }
                    for to in 0..n {
                        let to_id = ReplicaId(to as u32);
                        match faults.fate(from, to_id, &msg) {
                            DeliveryFate::Deliver => queues[to].push((from, msg.clone())),
                            DeliveryFate::Delay(_) => delayed[to].push((from, msg.clone())),
                            DeliveryFate::Drop => obs.dropped_messages += 1,
                        }
                    }
                }
                Action::Reply { reply } => obs.replies.push(reply),
                _ => {}
            }
        }
    };

    for (target, txns) in inject {
        let mut out = Outbox::new();
        engines[target].on_client_request(txns, &mut out);
        route(
            engines[target].id(),
            out.drain(),
            &mut queues,
            &mut delayed,
            &mut obs,
        );
    }

    let mut drain = |queues: &mut Vec<Vec<(ReplicaId, Message)>>,
                     delayed: &mut Vec<Vec<(ReplicaId, Message)>>,
                     engines: &mut [Box<dyn ConsensusEngine>],
                     obs: &mut Observations| {
        for _ in 0..max_rounds {
            let mut any = false;
            for i in 0..n {
                if faults.is_failed(ReplicaId(i as u32)) {
                    queues[i].clear();
                    continue;
                }
                for (from, msg) in std::mem::take(&mut queues[i]) {
                    any = true;
                    obs.delivered_messages += 1;
                    let mut out = Outbox::new();
                    engines[i].on_message(from, msg, &mut out);
                    route(engines[i].id(), out.drain(), queues, delayed, obs);
                }
            }
            if !any {
                break;
            }
        }
    };

    // Phase 1: prompt delivery of everything the adversary lets through.
    drain(&mut queues, &mut delayed, engines, &mut obs);

    // Phase 2: the client complains / timers fire at the chosen replicas.
    for idx in fire_timers {
        let mut out = Outbox::new();
        engines[*idx].on_timer(TimerKind::ViewChange, &mut out);
        route(
            engines[*idx].id(),
            out.drain(),
            &mut queues,
            &mut delayed,
            &mut obs,
        );
    }
    drain(&mut queues, &mut delayed, engines, &mut obs);

    // Phase 3: partial synchrony — the delayed messages finally arrive.
    for i in 0..n {
        queues[i].append(&mut delayed[i]);
    }
    drain(&mut queues, &mut delayed, engines, &mut obs);

    obs
}

/// Counts, per request, how many **distinct** replicas replied with a
/// matching (sequence number, speculative-or-not) answer; returns the
/// maximum across result variants — i.e. the best the client could do.
pub fn max_matching_replies(obs: &Observations) -> usize {
    use std::collections::{BTreeSet, HashMap};
    let mut per_result: HashMap<(u64, u64, u64), BTreeSet<ReplicaId>> = HashMap::new();
    for reply in &obs.replies {
        per_result
            .entry((reply.client.0, reply.request.0, reply.seq.0))
            .or_default()
            .insert(reply.replica);
    }
    per_result.values().map(BTreeSet::len).max().unwrap_or(0)
}
