//! The §5 restricted-responsiveness attack (Figure 2).
//!
//! Setup (Claim 1 of the paper), for a trust-bft protocol with `n = 2f + 1`:
//! the `f` Byzantine replicas (including the primary) withhold every message
//! from a set `D` of `f` honest replicas, and the one remaining honest
//! replica `r`'s messages towards `D` are delayed. The Byzantine replicas
//! and `r` commit and execute the transaction, but only `r` replies — one
//! reply, when the client needs `f + 1` matching ones. The replicas in `D`
//! eventually complain, but they are only `f` strong, one short of the
//! `f + 1` view-change quorum, so no view change rescues the client either.
//!
//! For a `3f + 1` protocol the same adversary controls only `f` of `3f + 1`
//! replicas; the `2f + 1` quorum the protocol needs necessarily contains
//! `f + 1` honest replicas, all of which execute and reply.

use crate::harness::{drive, max_matching_replies};
use flexitrust_protocol::ConsensusEngine;
use flexitrust_sim::{build_replicas, FaultPlan, ScenarioSpec};
use flexitrust_types::{ClientId, KvOp, ProtocolId, ReplicaId, RequestId, Transaction};

/// Outcome of the responsiveness scenario for one protocol.
#[derive(Debug, Clone)]
pub struct ResponsivenessReport {
    /// The protocol under attack.
    pub protocol: ProtocolId,
    /// Number of replicas.
    pub n: usize,
    /// Fault threshold.
    pub f: usize,
    /// Matching replies the client managed to collect.
    pub matching_replies: usize,
    /// Matching replies the client needs to accept the result.
    pub replies_needed: usize,
    /// View-change votes observed (the complaining replicas).
    pub view_change_votes: usize,
    /// View-change votes needed for a view change to proceed.
    pub view_change_quorum: usize,
}

impl ResponsivenessReport {
    /// Whether the client received enough matching replies (RSM liveness).
    pub fn client_responsive(&self) -> bool {
        self.matching_replies >= self.replies_needed
    }

    /// Whether the complaining replicas could force a view change.
    pub fn view_change_possible(&self) -> bool {
        self.view_change_votes >= self.view_change_quorum
    }

    /// The §5 outcome: the system is stuck from the client's perspective.
    pub fn client_stuck(&self) -> bool {
        !self.client_responsive() && !self.view_change_possible()
    }
}

/// Runs the §5 attack against `protocol` with fault threshold `f`.
pub fn responsiveness_attack(protocol: ProtocolId, f: usize) -> ResponsivenessReport {
    let mut spec = ScenarioSpec::quick_test(protocol);
    spec.f = f;
    spec.batch_size = 1;
    let config = spec.system_config();
    let n = config.n;

    // Byzantine set F: the primary plus the next f-1 replicas.
    let byzantine: Vec<ReplicaId> = (0..f as u32).map(ReplicaId).collect();
    // Victim set D: the last f replicas.
    let victims: Vec<ReplicaId> = ((n - f) as u32..n as u32).map(ReplicaId).collect();
    // The delayed honest replica r: the first replica outside F and D.
    let delayed = ReplicaId(f as u32);
    let faults =
        FaultPlan::responsiveness_attack(byzantine.clone(), victims.clone(), delayed, 10_000_000);

    let mut engines: Vec<Box<dyn ConsensusEngine>> = build_replicas(&spec)
        .into_iter()
        .map(|setup| setup.engine)
        .collect();

    let txn = Transaction::new(
        ClientId(1),
        RequestId(1),
        KvOp::Update {
            key: 7,
            value: vec![1, 2, 3].into(),
        },
    );
    let reply_quorum = config.quorum(engines[0].properties().reply_quorum);
    // The replicas kept in the dark eventually complain (their timers fire);
    // Byzantine replicas of course do not help.
    let timer_targets: Vec<usize> = victims.iter().map(|r| r.as_usize()).collect();
    let obs = drive(
        &mut engines,
        &faults,
        vec![(0, vec![txn])],
        &timer_targets,
        200,
    );

    // Only count replies the client can actually receive promptly: replies
    // from Byzantine replicas are withheld from the client as well.
    let honest_replies = {
        let mut filtered = obs.replies.clone();
        filtered.retain(|r| !byzantine.contains(&r.replica));
        let tmp = crate::harness::Observations {
            replies: filtered,
            ..Default::default()
        };
        max_matching_replies(&tmp)
    };

    ResponsivenessReport {
        protocol,
        n,
        f,
        matching_replies: honest_replies,
        replies_needed: reply_quorum,
        view_change_votes: victims.len(),
        view_change_quorum: f + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minbft_client_is_stuck_under_the_attack() {
        let report = responsiveness_attack(ProtocolId::MinBft, 2);
        assert_eq!(report.n, 5);
        assert!(
            report.matching_replies < report.replies_needed,
            "client got {} of {} needed",
            report.matching_replies,
            report.replies_needed
        );
        assert!(!report.view_change_possible());
        assert!(report.client_stuck());
    }

    #[test]
    fn pbft_ea_client_is_stuck_under_the_attack() {
        let report = responsiveness_attack(ProtocolId::PbftEa, 2);
        assert!(report.client_stuck());
    }

    #[test]
    fn flexi_bft_client_remains_responsive() {
        let report = responsiveness_attack(ProtocolId::FlexiBft, 2);
        assert_eq!(report.n, 7);
        assert!(
            report.client_responsive(),
            "client got {} of {} needed",
            report.matching_replies,
            report.replies_needed
        );
    }

    #[test]
    fn pbft_client_remains_responsive() {
        let report = responsiveness_attack(ProtocolId::Pbft, 2);
        assert!(
            report.client_responsive(),
            "Pbft: {} of {}",
            report.matching_replies,
            report.replies_needed
        );
    }

    #[test]
    fn flexi_zz_result_is_durable_at_f_plus_1_honest_replicas() {
        // Flexi-ZZ's client rule is 2f + 1 replies, so this particular
        // adversary can still deny the *fast* answer; what 3f + 1 buys is
        // that every answer the client could accept is backed by at least
        // f + 1 honest executions, so the result can never be equivocated
        // away and the retry/view-change path can always serve it.
        let report = responsiveness_attack(ProtocolId::FlexiZz, 2);
        assert!(
            report.matching_replies > report.f,
            "only {} honest executions",
            report.matching_replies
        );
        // And unlike the 2f + 1 protocols, enough honest replicas noticed the
        // problem for a view change to be possible once they time out.
        assert!(report.view_change_votes + report.matching_replies >= report.view_change_quorum);
    }
}
