//! Byzantine attack scenarios from §5–§7 of the paper.
//!
//! Each module reproduces one of the paper's analytical claims as executable
//! code against the real protocol engines:
//!
//! * [`responsiveness`] — §5: with `n = 2f + 1`, Byzantine replicas plus one
//!   delayed honest replica leave the client short of the `f + 1` matching
//!   replies it needs, and no view change can be triggered; with `3f + 1`
//!   (PBFT, FlexiTrust) the client always hears from `f + 1` honest replicas.
//! * [`rollback`] — §6: rolling back the primary's (non-persistent) trusted
//!   counter lets it equivocate, committing two different transactions at
//!   the same sequence number in MinBFT; in Flexi-BFT the same rollback
//!   cannot produce two commits because `2f + 1` quorums intersect in an
//!   honest replica.
//! * [`sequential`] — §7: trust-bft replicas must access their counters in
//!   order, so out-of-order proposals are rejected by the trusted component,
//!   while FlexiTrust replicas accept out-of-order proposals and merely
//!   delay execution.
//!
//! The scenario drivers use the same fault plans as the simulator
//! ([`flexitrust_sim::FaultPlan`]) so the attack can also be replayed at
//! scale inside the discrete-event simulation (Figure 2).

pub mod harness;
pub mod responsiveness;
pub mod rollback;
pub mod sequential;

pub use responsiveness::{responsiveness_attack, ResponsivenessReport};
pub use rollback::{rollback_attack_flexibft, rollback_attack_minbft, RollbackReport};
pub use sequential::{out_of_order_probe, SequentialReport};
