//! The §7 sequentiality probe.
//!
//! trust-bft replicas must bind every accepted proposal to their trusted
//! monotonic counter *in order*: if the proposal for sequence number 2
//! arrives (and is processed) before the proposal for sequence number 1, the
//! counter has already advanced past 1 and the replica's trusted component
//! rejects the later (lower) binding — the consensus for slot 1 can no
//! longer make progress at that replica. FlexiTrust replicas never touch
//! their trusted components on the receive path, so out-of-order proposals
//! are simply parked by the execution queue and executed once the gap fills.

use flexitrust_baselines::MinBft;
use flexitrust_core::FlexiZz;
use flexitrust_crypto::make_batch;
use flexitrust_protocol::{ConsensusEngine, Message, Outbox};
use flexitrust_trusted::{AttestationMode, Enclave, EnclaveConfig, EnclaveRegistry, SharedEnclave};
use flexitrust_types::{
    ClientId, KvOp, ProtocolId, ReplicaId, RequestId, SeqNum, Transaction, View,
};

/// Outcome of delivering proposals out of order to one replica.
#[derive(Debug, Clone)]
pub struct SequentialReport {
    /// The protocol probed.
    pub protocol: ProtocolId,
    /// Trusted-component accesses rejected because of ordering.
    pub tc_rejections: u64,
    /// Whether the replica eventually executed both proposals.
    pub both_executed: bool,
}

fn batches() -> (flexitrust_types::Batch, flexitrust_types::Batch) {
    let t1 = Transaction::new(ClientId(1), RequestId(1), KvOp::Read { key: 1 });
    let t2 = Transaction::new(ClientId(1), RequestId(2), KvOp::Read { key: 2 });
    (make_batch(vec![t1]), make_batch(vec![t2]))
}

/// Probes MinBFT: sequence number 2 is delivered before sequence number 1.
pub fn out_of_order_probe_minbft(f: usize) -> SequentialReport {
    let mut config = MinBft::config(f);
    config.batch_size = 1;
    let registry = EnclaveRegistry::deterministic(config.n, AttestationMode::Real);
    let primary_enclave: SharedEnclave = MinBft::enclave(ReplicaId(0), AttestationMode::Real);
    let backup_enclave: SharedEnclave = MinBft::enclave(ReplicaId(1), AttestationMode::Real);
    let mut backup = MinBft::engine(
        config,
        ReplicaId(1),
        backup_enclave.clone(),
        registry.clone(),
    );

    let (b1, b2) = batches();
    // The (honest but concurrent) primary attested both proposals in order.
    let att1 = primary_enclave
        .append(0, 1, b1.digest())
        .expect("first append");
    let att2 = primary_enclave
        .append(0, 2, b2.digest())
        .expect("second append");

    // Deliver out of order: seq 2 first, then seq 1.
    let mut out = Outbox::new();
    backup.on_message(
        ReplicaId(0),
        Message::PrePrepare {
            view: View(0),
            seq: SeqNum(2),
            batch: b2,
            attestation: Some(att2),
        },
        &mut out,
    );
    backup.on_message(
        ReplicaId(0),
        Message::PrePrepare {
            view: View(0),
            seq: SeqNum(1),
            batch: b1,
            attestation: Some(att1),
        },
        &mut out,
    );

    SequentialReport {
        protocol: ProtocolId::MinBft,
        tc_rejections: backup_enclave.stats().snapshot().rejected,
        both_executed: backup.last_executed() >= SeqNum(2),
    }
}

/// Probes Flexi-ZZ with the same out-of-order delivery.
pub fn out_of_order_probe_flexizz(f: usize) -> SequentialReport {
    let mut config = FlexiZz::config(f);
    config.batch_size = 1;
    let registry = EnclaveRegistry::deterministic(config.n, AttestationMode::Real);
    let primary_enclave = Enclave::shared(EnclaveConfig::counter_only(
        ReplicaId(0),
        AttestationMode::Real,
    ));
    let backup_enclave = FlexiZz::enclave(ReplicaId(1), AttestationMode::Real);
    let mut backup = FlexiZz::new(config, ReplicaId(1), backup_enclave.clone(), registry);

    let (b1, b2) = batches();
    let (_, att1) = primary_enclave
        .append_f(0, b1.digest())
        .expect("first append");
    let (_, att2) = primary_enclave
        .append_f(0, b2.digest())
        .expect("second append");

    let mut out = Outbox::new();
    backup.on_message(
        ReplicaId(0),
        Message::PrePrepare {
            view: View(0),
            seq: SeqNum(2),
            batch: b2,
            attestation: Some(att2),
        },
        &mut out,
    );
    backup.on_message(
        ReplicaId(0),
        Message::PrePrepare {
            view: View(0),
            seq: SeqNum(1),
            batch: b1,
            attestation: Some(att1),
        },
        &mut out,
    );

    SequentialReport {
        protocol: ProtocolId::FlexiZz,
        tc_rejections: backup_enclave.stats().snapshot().rejected,
        both_executed: backup.last_executed() >= SeqNum(2),
    }
}

/// Convenience wrapper used by the benches: probes both protocols.
pub fn out_of_order_probe(f: usize) -> (SequentialReport, SequentialReport) {
    (out_of_order_probe_minbft(f), out_of_order_probe_flexizz(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minbft_rejects_out_of_order_bindings_at_its_counter() {
        let report = out_of_order_probe_minbft(1);
        assert!(
            report.tc_rejections >= 1,
            "expected at least one rejected TC access, got {report:?}"
        );
    }

    #[test]
    fn flexi_zz_accepts_out_of_order_proposals_without_touching_its_counter() {
        let report = out_of_order_probe_flexizz(1);
        assert_eq!(report.tc_rejections, 0);
        assert!(report.both_executed, "{report:?}");
    }
}
