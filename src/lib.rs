//! # FlexiTrust — "Dissecting BFT Consensus: In Trusted Components we Trust!"
//!
//! This is the facade crate of a from-scratch Rust reproduction of the
//! EuroSys 2023 paper. It re-exports the public API of every sub-crate so
//! that applications, the examples and the benchmark harness can depend on a
//! single crate:
//!
//! * [`types`] — identifiers, transactions, batches, configuration.
//! * [`crypto`] — digests, MACs, Ed25519 signatures, counting providers.
//! * [`trusted`] — trusted counters/logs, attestations, rollback and
//!   latency models.
//! * [`workload`] — the YCSB-style workload generator.
//! * [`exec`] — the key-value state machine and in-order execution queue.
//! * [`protocol`] — the engine trait and shared consensus infrastructure.
//! * [`wire`] — the canonical binary codec: the frame bytes the TCP
//!   transport carries and the simulator's bandwidth model charges.
//! * [`host`] — the shared engine-hosting layer (the `EngineHost`
//!   environment contract and the single `Action` dispatcher) every
//!   environment below builds on.
//! * [`core`] — the FlexiTrust protocols (Flexi-BFT, Flexi-ZZ).
//! * [`baselines`] — PBFT, Zyzzyva, PBFT-EA, MinBFT, MinZZ, OPBFT-EA,
//!   CheapBFT.
//! * [`attacks`] — the §5–§7 attack scenarios.
//! * [`sim`] — the discrete-event simulator behind every figure.
//! * [`runtime`] — the real threaded deployment used by the examples.
//!
//! ## Quick start
//!
//! ```
//! use flexitrust::prelude::*;
//!
//! // Simulate Flexi-ZZ for a few simulated milliseconds and print the
//! // throughput the closed-loop clients observed.
//! let mut spec = ScenarioSpec::quick_test(ProtocolId::FlexiZz);
//! spec.duration_us = 50_000;
//! spec.warmup_us = 10_000;
//! let report = Simulation::new(spec).run();
//! assert!(report.completed_txns > 0);
//! ```

pub use flexitrust_attacks as attacks;
pub use flexitrust_baselines as baselines;
pub use flexitrust_core as core;
pub use flexitrust_crypto as crypto;
pub use flexitrust_exec as exec;
pub use flexitrust_host as host;
pub use flexitrust_protocol as protocol;
pub use flexitrust_runtime as runtime;
pub use flexitrust_sim as sim;
pub use flexitrust_trusted as trusted;
pub use flexitrust_types as types;
pub use flexitrust_wire as wire;
pub use flexitrust_workload as workload;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use flexitrust_core::{FlexiBft, FlexiZz};
    pub use flexitrust_host::{Dispatcher, EngineHost};
    pub use flexitrust_protocol::{
        ClientLibrary, ConsensusEngine, Message, Outbox, ProtocolProperties, TimerKind,
    };
    pub use flexitrust_runtime::{
        Cluster, ClusterSummary, CrashWindow, PrimaryTracker, TcpCluster,
    };
    pub use flexitrust_sim::{
        ChaosEvent, ChaosPlan, CostModel, CrashAtSeq, Direction, FaultPlan, LinkChaos, LinkClass,
        LinkQueues, LinkUsage, MessageClass, NetworkModel, Nic, ScenarioSpec, SimReport,
        Simulation,
    };
    pub use flexitrust_trusted::{Enclave, EnclaveConfig, EnclaveRegistry, TrustedHardware};
    pub use flexitrust_types::{
        BandwidthConfig, Batch, ClientId, ProtocolId, QuorumRule, ReplicaId, RequestId, SeqNum,
        SystemConfig, Transaction, View,
    };
    pub use flexitrust_wire::{
        client_upload_wire_size, decode_frame, decode_message, encode_frame, encode_message,
        read_frame, write_frame, Frame, WireError,
    };
    pub use flexitrust_workload::{WorkloadConfig, WorkloadGenerator};
}
