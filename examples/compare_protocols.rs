//! Compare every protocol of the paper under the simulator's default
//! LAN scenario and print a Figure 6(i)-style summary, plus the Figure 1
//! qualitative table.
//!
//! ```text
//! cargo run --release --example compare_protocols
//! ```

use flexitrust::prelude::*;
use flexitrust::protocol::ProtocolProperties;

fn main() {
    println!("Figure 1 (protocol properties):");
    for row in ProtocolProperties::figure1_rows() {
        println!("  {row}");
    }
    println!();

    println!("Simulated LAN comparison (f = 2, batch 50, 2 000 clients):");
    for protocol in ProtocolId::ALL {
        let mut spec = ScenarioSpec::quick_test(protocol);
        spec.f = 2;
        spec.batch_size = 50;
        spec.clients = 2_000;
        spec.duration_us = 200_000;
        spec.warmup_us = 50_000;
        let report = Simulation::new(spec).run();
        println!("  {}", report.summary_line());
    }
    println!();
    println!(
        "Expected shape (paper §9.4): Pbft-EA lowest; MinBFT/MinZZ above it; Pbft above all\n\
         trust-bft protocols; Flexi-BFT and Flexi-ZZ highest; oFlexi-* below their trust-bft\n\
         counterparts because they give up parallel consensus."
    );
}
