//! Reproduce the paper's three analytical attacks (§5, §6, §7) against the
//! real protocol engines and print what happens.
//!
//! ```text
//! cargo run --release --example trusted_component_attacks
//! ```

use flexitrust::attacks::{
    out_of_order_probe, responsiveness_attack, rollback_attack_flexibft, rollback_attack_minbft,
};
use flexitrust::prelude::*;

fn main() {
    println!("== Section 5: restricted responsiveness (weak quorums) ==");
    for protocol in [ProtocolId::MinBft, ProtocolId::FlexiBft, ProtocolId::Pbft] {
        let r = responsiveness_attack(protocol, 2);
        println!(
            "  {:<11} client got {}/{} matching replies, view-change votes {}/{} -> {}",
            r.protocol.name(),
            r.matching_replies,
            r.replies_needed,
            r.view_change_votes,
            r.view_change_quorum,
            if r.client_stuck() { "STUCK" } else { "ok" }
        );
    }

    println!();
    println!("== Section 6: rollback attack on the trusted counter ==");
    let minbft = rollback_attack_minbft(2, TrustedHardware::default_enclave());
    println!(
        "  MinBFT on SGX enclave counters : rollback ok = {}, safety violated = {} ({} vs {} executions at {})",
        minbft.rollback_succeeded,
        minbft.safety_violated,
        minbft.executed_t,
        minbft.executed_t_prime,
        minbft.seq
    );
    let minbft_tpm = rollback_attack_minbft(2, TrustedHardware::typical_tpm());
    println!(
        "  MinBFT on a TPM               : rollback ok = {}, safety violated = {}",
        minbft_tpm.rollback_succeeded, minbft_tpm.safety_violated
    );
    let flexi = rollback_attack_flexibft(2, TrustedHardware::default_enclave());
    println!(
        "  Flexi-BFT on SGX enclave      : rollback ok = {}, safety violated = {}",
        flexi.rollback_succeeded, flexi.safety_violated
    );

    println!();
    println!("== Section 7: out-of-order proposals (sequential consensus) ==");
    let (minbft, flexizz) = out_of_order_probe(1);
    println!(
        "  MinBFT : trusted-component rejections = {}, both slots executed = {}",
        minbft.tc_rejections, minbft.both_executed
    );
    println!(
        "  Flexi-ZZ: trusted-component rejections = {}, both slots executed = {}",
        flexizz.tc_rejections, flexizz.both_executed
    );
}
