//! Quickstart: run a real (threaded, real-crypto) Flexi-ZZ cluster and a
//! small YCSB-style workload against it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use flexitrust::prelude::*;
use std::time::Duration;

fn main() {
    // Flexi-ZZ with f = 1 (4 replicas), batches of 10 transactions, real
    // Ed25519 attestations from each replica's software enclave.
    let cluster = Cluster::start(ProtocolId::FlexiZz, 1, 10);
    println!(
        "started {} replicas running {}",
        cluster.config().n,
        cluster.config().protocol.name()
    );

    let summary = cluster.run_workload(500, 20, Duration::from_secs(30));
    println!(
        "completed {} transactions in {:.2?} ({:.0} txn/s across {} replicas)",
        summary.completed_txns, summary.elapsed, summary.throughput_tps, summary.n
    );
    cluster.shutdown();

    // The same protocol, this time under the discrete-event simulator used
    // for the paper's evaluation figures.
    let mut spec = ScenarioSpec::quick_test(ProtocolId::FlexiZz);
    spec.clients = 1_000;
    let report = Simulation::new(spec).run();
    println!("simulated: {}", report.summary_line());
}
